(** Type checking and code generation: mini-Java AST → JIR.

    The pass is deliberately simple — one symbol-collection sweep, then a
    single typed code-generation walk per method using {!Jir.Builder}.
    Instance methods receive their receiver as JIR parameter 0; classes
    without an explicit constructor get a trivial synthesized one (the
    verifier requires every allocation to be constructor-initialized, and
    the paper's analysis gives constructors their special entry state). *)

open Ast

exception Type_error of { pos : pos; message : string }

let errf pos fmt =
  Fmt.kstr (fun message -> raise (Type_error { pos; message })) fmt

let pp_error ppf = function
  | Type_error { pos; message } ->
      Fmt.pf ppf "minijava: %d:%d: %s" pos.line pos.col message
  | e -> Jparser.pp_error ppf e

(* ---- collected signatures ---------------------------------------------- *)

type msig = {
  sg_static : bool;
  sg_ctor : bool;
  sg_params : ty list;  (** excluding the receiver *)
  sg_ret : ty option;
}

type csig = {
  cs_fields : (string * ty) list;  (** instance *)
  cs_statics : (string * ty) list;
  cs_methods : (string * msig) list;
}

type genv = (string, csig) Hashtbl.t

let collect (prog : program) : genv =
  let g = Hashtbl.create 8 in
  List.iter
    (fun (c : cls) ->
      if Hashtbl.mem g c.c_name then
        errf { line = 0; col = 0 } "duplicate class %s" c.c_name;
      let fields, statics =
        List.partition_map
          (fun f ->
            if f.f_static then Right (f.f_name, f.f_ty)
            else Left (f.f_name, f.f_ty))
          c.c_fields
      in
      let methods =
        List.map
          (fun (m : meth) ->
            ( m.m_name,
              {
                sg_static = m.m_static;
                sg_ctor = m.m_ctor;
                sg_params = List.map fst m.m_params;
                sg_ret = m.m_ret;
              } ))
          c.c_methods
      in
      let methods =
        (* classes without an explicit constructor get the synthesized
           default one (mirrored in {!compile_class}) *)
        if List.exists (fun (m : meth) -> m.m_ctor) c.c_methods then methods
        else
          ( "<init>",
            { sg_static = false; sg_ctor = true; sg_params = []; sg_ret = None }
          )
          :: methods
      in
      Hashtbl.replace g c.c_name
        { cs_fields = fields; cs_statics = statics; cs_methods = methods })
    prog;
  g

let class_sig (g : genv) pos name : csig =
  match Hashtbl.find_opt g name with
  | Some cs -> cs
  | None -> errf pos "unknown class %s" name

let is_class (g : genv) name = Hashtbl.mem g name

(* ---- expression types -------------------------------------------------- *)

(** The type of [null] is compatible with every reference type. *)
type ety = Known of ty | Null_t

let pp_ety ppf = function
  | Known t -> pp_ty ppf t
  | Null_t -> Fmt.string ppf "null"

let compatible ~(expected : ty) (actual : ety) =
  match actual with
  | Known t -> equal_ty expected t
  | Null_t -> ( match expected with Tint -> false | Tobj _ | Tarr _ -> true)

(* ---- per-method compilation environment -------------------------------- *)

type env = {
  g : genv;
  cur_class : string;
  cur_static : bool;
  b : Jir.Builder.t;
  locals : (string, int * ty) Hashtbl.t;
  mutable next_local : int;
  mutable next_label : int;
}

let fresh_label env prefix =
  let n = env.next_label in
  env.next_label <- n + 1;
  Printf.sprintf "%s%d" prefix n

let add_local env pos name ty =
  if Hashtbl.mem env.locals name then
    errf pos "variable %s is already defined" name;
  let slot = env.next_local in
  env.next_local <- slot + 1;
  Jir.Builder.grow_locals env.b (slot + 1);
  Hashtbl.replace env.locals name (slot, ty);
  slot

let find_local env name = Hashtbl.find_opt env.locals name

let instance_field env pos cls name : ty =
  match List.assoc_opt name (class_sig env.g pos cls).cs_fields with
  | Some t -> t
  | None -> errf pos "class %s has no field %s" cls name

let static_field env pos cls name : ty =
  match List.assoc_opt name (class_sig env.g pos cls).cs_statics with
  | Some t -> t
  | None -> errf pos "class %s has no static field %s" cls name

let method_sig env pos cls name : msig =
  match List.assoc_opt name (class_sig env.g pos cls).cs_methods with
  | Some s -> s
  | None -> errf pos "class %s has no method %s" cls name

let emit env i = Jir.Builder.emit env.b i

(* A parsed [Field (Local c, f)] where [c] names a class (and no local
   shadows it) is really a static access; same for instance calls. *)
let as_static_base env (e : expr) : string option =
  match e.e with
  | Local name when find_local env name = None && is_class env.g name ->
      Some name
  | _ -> None

(* ---- expressions ------------------------------------------------------- *)

let rec compile_expr env (e : expr) : ety =
  match e.e with
  | Int_lit n ->
      emit env (Iconst n);
      Known Tint
  | Null ->
      emit env Aconst_null;
      Null_t
  | Local "this" ->
      if env.cur_static then errf e.pos "this in a static method";
      emit env (Aload 0);
      Known (Tobj env.cur_class)
  | Local name -> (
      match find_local env name with
      | Some (slot, ty) ->
          emit env (match ty with Tint -> Iload slot | _ -> Aload slot);
          Known ty
      | None -> errf e.pos "unknown variable %s" name)
  | Field (base, f) -> (
      match as_static_base env base with
      | Some cls ->
          let ty = static_field env e.pos cls f in
          emit env (Getstatic { fclass = cls; fname = f });
          Known ty
      | None -> (
          match compile_expr env base with
          | Known (Tobj cls) ->
              let ty = instance_field env e.pos cls f in
              emit env (Getfield { fclass = cls; fname = f });
              Known ty
          | t -> errf e.pos "field access on non-object (%a)" pp_ety t))
  | Static_field (cls, f) ->
      let ty = static_field env e.pos cls f in
      emit env (Getstatic { fclass = cls; fname = f });
      Known ty
  | Index (arr, idx) -> (
      match compile_expr env arr with
      | Known (Tarr elem) -> (
          expect_int env idx;
          match elem with
          | Eint ->
              emit env Iaload;
              Known Tint
          | Eobj c ->
              emit env Aaload;
              Known (Tobj c))
      | t -> errf e.pos "indexing a non-array (%a)" pp_ety t)
  | Length arr -> (
      match compile_expr env arr with
      | Known (Tarr _) ->
          emit env Arraylength;
          Known Tint
      | t -> errf e.pos ".length of a non-array (%a)" pp_ety t)
  | New_obj (cls, args) ->
      let sg = method_sig env e.pos cls "<init>" in
      if not sg.sg_ctor then errf e.pos "%s.<init> is not a constructor" cls;
      emit env (New cls);
      emit env Dup;
      compile_args env e.pos args sg.sg_params;
      emit env (Invoke { mclass = cls; mname = "<init>" });
      Known (Tobj cls)
  | New_arr (elem, len) ->
      expect_int env len;
      (match elem with
      | Eint -> emit env (Newarray Elem_int)
      | Eobj c ->
          if not (is_class env.g c) then errf e.pos "unknown class %s" c;
          emit env (Newarray (Elem_ref c)));
      Known (Tarr elem)
  | Call c -> (
      match compile_call env e.pos c with
      | Some t -> Known t
      | None -> errf e.pos "void method used as a value")
  | Binop (op, a, b) ->
      expect_int env a;
      expect_int env b;
      emit env
        (Ibin
           (match op with
           | Add -> Jir.Types.Add
           | Sub -> Jir.Types.Sub
           | Mul -> Jir.Types.Mul
           | Div -> Jir.Types.Div
           | Rem -> Jir.Types.Rem));
      Known Tint
  | Neg a ->
      expect_int env a;
      emit env Ineg;
      Known Tint

and expect_int env (e : expr) : unit =
  match compile_expr env e with
  | Known Tint -> ()
  | t -> errf e.pos "expected an int expression, found %a" pp_ety t

and expect_ty env (e : expr) ~(expected : ty) : unit =
  let actual = compile_expr env e in
  if not (compatible ~expected actual) then
    errf e.pos "expected %a, found %a" pp_ty expected pp_ety actual

and compile_args env pos (args : expr list) (params : ty list) : unit =
  if List.length args <> List.length params then
    errf pos "expected %d arguments, got %d" (List.length params)
      (List.length args);
  List.iter2 (fun a expected -> expect_ty env a ~expected) args params

(** Compile a call, pushing its result if any; returns its return type. *)
and compile_call env pos (c : call) : ty option =
  match c with
  | Static_call ("", name, args) ->
      (* unqualified: a method of the current class *)
      let sg = method_sig env pos env.cur_class name in
      if sg.sg_static then
        compile_call env pos (Static_call (env.cur_class, name, args))
      else if env.cur_static then
        errf pos "instance method %s called from a static method" name
      else
        compile_call env pos
          (Instance_call
             ({ e = Local "this"; pos }, name, args))
  | Static_call (cls, name, args) ->
      let sg = method_sig env pos cls name in
      if not sg.sg_static then
        errf pos "%s.%s is an instance method" cls name;
      compile_args env pos args sg.sg_params;
      emit env (Invoke { mclass = cls; mname = name });
      sg.sg_ret
  | Instance_call (recv, name, args) -> (
      match as_static_base env recv with
      | Some cls -> compile_call env pos (Static_call (cls, name, args))
      | None -> (
          match compile_expr env recv with
          | Known (Tobj cls) ->
              let sg = method_sig env pos cls name in
              if sg.sg_static then
                errf pos "%s.%s is static; call it on the class" cls name;
              compile_args env pos args sg.sg_params;
              emit env (Invoke { mclass = cls; mname = name });
              sg.sg_ret
          | t -> errf pos "method call on non-object (%a)" pp_ety t))

(* ---- conditions --------------------------------------------------------- *)

(** Compile a condition as control flow: fall through or jump so that
    control reaches [if_true] / [if_false]. *)
let rec compile_cond env (c : cond) ~(if_true : string) ~(if_false : string)
    : unit =
  match c.c with
  | Not inner -> compile_cond env inner ~if_true:if_false ~if_false:if_true
  | And (a, b) ->
      let mid = fresh_label env "and" in
      compile_cond env a ~if_true:mid ~if_false;
      Jir.Builder.label env.b mid;
      compile_cond env b ~if_true ~if_false
  | Or (a, b) ->
      let mid = fresh_label env "or" in
      compile_cond env a ~if_true ~if_false:mid;
      Jir.Builder.label env.b mid;
      compile_cond env b ~if_true ~if_false
  | Cmp (op, a, b) -> (
      let jump_int cond =
        emit env (If_icmp (cond, if_true));
        emit env (Goto if_false)
      in
      let ta = lazy (compile_expr env a) in
      (* null comparisons get the dedicated branch forms *)
      match op, a.e, b.e with
      | (Eq | Ne), Null, Null ->
          (* degenerate but legal: null == null is always true *)
          emit env (Goto (if op = Eq then if_true else if_false))
      | (Eq | Ne), _, Null ->
          (match Lazy.force ta with
          | Known Tint -> errf a.pos "int compared against null"
          | Known (Tobj _ | Tarr _) | Null_t -> ());
          emit env
            (if op = Eq then If_null if_true else If_nonnull if_true);
          emit env (Goto if_false)
      | (Eq | Ne), Null, _ ->
          compile_cond env
            { c = Cmp (op, b, a); cpos = c.cpos }
            ~if_true ~if_false
      | _, _, _ -> (
          match Lazy.force ta with
          | Known Tint ->
              expect_int env b;
              jump_int
                (match op with
                | Lt -> Jir.Types.Lt
                | Le -> Jir.Types.Le
                | Gt -> Jir.Types.Gt
                | Ge -> Jir.Types.Ge
                | Eq -> Jir.Types.Eq
                | Ne -> Jir.Types.Ne)
          | Known (Tobj _ | Tarr _) | Null_t -> (
              let tb = compile_expr env b in
              ignore tb;
              match op with
              | Eq ->
                  emit env (If_acmp (true, if_true));
                  emit env (Goto if_false)
              | Ne ->
                  emit env (If_acmp (false, if_true));
                  emit env (Goto if_false)
              | Lt | Le | Gt | Ge ->
                  errf c.cpos "ordered comparison of references")))

(* ---- statements --------------------------------------------------------- *)

let rec compile_stmt env (st : stmt) : unit =
  match st.s with
  | Decl (ty, name, init) ->
      expect_ty env init ~expected:ty;
      let slot = add_local env st.spos name ty in
      emit env (match ty with Tint -> Istore slot | _ -> Astore slot)
  | Assign_local (name, rhs) -> (
      match find_local env name with
      | Some (slot, ty) ->
          expect_ty env rhs ~expected:ty;
          emit env (match ty with Tint -> Istore slot | _ -> Astore slot)
      | None -> errf st.spos "unknown variable %s" name)
  | Assign_field (base, f, rhs) -> (
      match as_static_base env base with
      | Some cls ->
          let ty = static_field env st.spos cls f in
          expect_ty env rhs ~expected:ty;
          emit env (Putstatic { fclass = cls; fname = f })
      | None -> (
          match compile_expr env base with
          | Known (Tobj cls) ->
              let ty = instance_field env st.spos cls f in
              expect_ty env rhs ~expected:ty;
              emit env (Putfield { fclass = cls; fname = f })
          | t -> errf st.spos "field assignment on non-object (%a)" pp_ety t))
  | Assign_static (cls, f, rhs) ->
      let ty = static_field env st.spos cls f in
      expect_ty env rhs ~expected:ty;
      emit env (Putstatic { fclass = cls; fname = f })
  | Assign_index (arr, idx, rhs) -> (
      match compile_expr env arr with
      | Known (Tarr elem) -> (
          expect_int env idx;
          match elem with
          | Eint ->
              expect_int env rhs;
              emit env Iastore
          | Eobj c ->
              expect_ty env rhs ~expected:(Tobj c);
              emit env Aastore)
      | t -> errf st.spos "indexed assignment on non-array (%a)" pp_ety t)
  | If (c, then_, else_) ->
      let lt = fresh_label env "then" in
      let lf = fresh_label env "else" in
      let join = fresh_label env "fi" in
      compile_cond env c ~if_true:lt ~if_false:lf;
      Jir.Builder.label env.b lt;
      List.iter (compile_stmt env) then_;
      emit env (Goto join);
      Jir.Builder.label env.b lf;
      List.iter (compile_stmt env) else_;
      emit env (Goto join);
      Jir.Builder.label env.b join
  | While (c, body) ->
      let head = fresh_label env "while" in
      let lbody = fresh_label env "do" in
      let out = fresh_label env "done" in
      Jir.Builder.label env.b head;
      compile_cond env c ~if_true:lbody ~if_false:out;
      Jir.Builder.label env.b lbody;
      List.iter (compile_stmt env) body;
      emit env (Goto head);
      Jir.Builder.label env.b out
  | For (init, c, step, body) ->
      Option.iter (compile_stmt env) init;
      let head = fresh_label env "for" in
      let lbody = fresh_label env "do" in
      let out = fresh_label env "done" in
      Jir.Builder.label env.b head;
      compile_cond env c ~if_true:lbody ~if_false:out;
      Jir.Builder.label env.b lbody;
      List.iter (compile_stmt env) body;
      Option.iter (compile_stmt env) step;
      emit env (Goto head);
      Jir.Builder.label env.b out
  | Return None -> emit env Return
  | Return (Some e) -> (
      match compile_expr env e with
      | Known Tint -> emit env Ireturn
      | Known (Tobj _ | Tarr _) | Null_t -> emit env Areturn)
  | Expr_stmt c -> (
      match compile_call env st.spos c with
      | None -> ()
      | Some _ -> emit env Pop)
  | Spawn (cls, name, args) ->
      let sg = method_sig env st.spos cls name in
      if not sg.sg_static then errf st.spos "spawn target must be static";
      if sg.sg_ret <> None then errf st.spos "spawn target must return void";
      compile_args env st.spos args sg.sg_params;
      emit env (Spawn { mclass = cls; mname = name })

(* ---- methods and classes ------------------------------------------------ *)

let compile_method (g : genv) (cls_name : string) (m : Ast.meth) :
    Jir.Types.meth =
  let params =
    (if m.m_static then [] else [ Jir.Types.R ])
    @ List.map (fun (t, _) -> erase t) m.m_params
  in
  let b =
    Jir.Builder.create ~name:m.m_name ~params
      ?ret:(Option.map erase m.m_ret)
      ~ctor:m.m_ctor
      ~locals:(List.length params)
      ()
  in
  let env =
    {
      g;
      cur_class = cls_name;
      cur_static = m.m_static;
      b;
      locals = Hashtbl.create 8;
      next_local = 0;
      next_label = 0;
    }
  in
  if not m.m_static then begin
    Hashtbl.replace env.locals "this" (0, Tobj cls_name);
    env.next_local <- 1
  end;
  List.iter
    (fun (t, name) ->
      let slot = env.next_local in
      env.next_local <- slot + 1;
      Hashtbl.replace env.locals name (slot, t))
    m.m_params;
  List.iter (compile_stmt env) m.m_body;
  (* void methods (and constructors) may fall off the end *)
  (match m.m_ret with None -> emit env Return | Some _ -> ());
  Jir.Builder.finish b

let default_ctor : Jir.Types.meth =
  Jir.Builder.meth "<init>" ~params:[ Jir.Types.R ] ~ctor:true ~locals:1
    (fun b -> Jir.Builder.emit b Jir.Types.Return)

let compile_class (g : genv) (c : Ast.cls) : Jir.Types.cls =
  let fields, statics =
    List.partition_map
      (fun f ->
        let fd = Jir.Builder.field_decl f.f_name (erase f.f_ty) in
        if f.f_static then Right fd else Left fd)
      c.c_fields
  in
  let methods = List.map (compile_method g c.c_name) c.c_methods in
  let methods =
    if List.exists (fun (m : Ast.meth) -> m.m_ctor) c.c_methods then methods
    else default_ctor :: methods
  in
  { Jir.Types.cname = c.c_name; fields; statics; methods }

(** Compile a mini-Java program to a linked JIR program. *)
let compile_program (prog : program) : Jir.Program.t =
  let g = collect prog in
  Jir.Program.of_program
    { Jir.Types.classes = List.map (compile_class g) prog }

(** Parse and compile mini-Java source. *)
let compile_source (src : string) : Jir.Program.t =
  compile_program (Jparser.parse_program src)
