(** Recursive-descent parser for mini-Java.

    One notable ambiguity is resolved later, in {!Compile}: [foo.bar]
    parses as a field access on the expression [Local "foo"]; when [foo]
    turns out to name a class rather than a local, the type checker
    reinterprets it as a static access. *)

open Ast
open Jlexer

exception Parse_error of { pos : pos; message : string }

type st = { toks : spanned array; mutable cur : int }

let errf (p : st) fmt =
  Fmt.kstr
    (fun message ->
      raise (Parse_error { pos = p.toks.(p.cur).pos; message }))
    fmt

let peek (p : st) = p.toks.(p.cur).tok
let peek2 (p : st) =
  if p.cur + 1 < Array.length p.toks then p.toks.(p.cur + 1).tok else Teof
let peek3 (p : st) =
  if p.cur + 2 < Array.length p.toks then p.toks.(p.cur + 2).tok else Teof
let pos_here (p : st) = p.toks.(p.cur).pos
let advance (p : st) = if p.cur < Array.length p.toks - 1 then p.cur <- p.cur + 1

let eat (p : st) (tok : token) =
  if peek p = tok then advance p
  else
    errf p "expected %s, found %s" (string_of_token tok)
      (string_of_token (peek p))

let eat_punct p s = eat p (Tpunct s)
let eat_kw p s = eat p (Tkw s)

let ident (p : st) =
  match peek p with
  | Tident s ->
      advance p;
      s
  | t -> errf p "expected an identifier, found %s" (string_of_token t)

(* ---- types ------------------------------------------------------------- *)

(** [base_ty] parses [int] or a class name; [ty] additionally accepts the
    array suffix. *)
let base_ty (p : st) : ty =
  match peek p with
  | Tkw "int" ->
      advance p;
      Tint
  | Tident c ->
      advance p;
      Tobj c
  | t -> errf p "expected a type, found %s" (string_of_token t)

let ty (p : st) : ty =
  let base = base_ty p in
  if peek p = Tpunct "[" && peek2 p = Tpunct "]" then begin
    advance p;
    advance p;
    match base with
    | Tint -> Tarr Eint
    | Tobj c -> Tarr (Eobj c)
    | Tarr _ -> errf p "multi-dimensional arrays are not supported"
  end
  else base

(* ---- expressions ------------------------------------------------------- *)

let rec expr (p : st) : expr = add_expr p

and add_expr (p : st) : expr =
  let rec loop acc =
    match peek p with
    | Tpunct "+" ->
        advance p;
        loop { e = Binop (Add, acc, mul_expr p); pos = acc.pos }
    | Tpunct "-" ->
        advance p;
        loop { e = Binop (Sub, acc, mul_expr p); pos = acc.pos }
    | _ -> acc
  in
  loop (mul_expr p)

and mul_expr (p : st) : expr =
  let rec loop acc =
    match peek p with
    | Tpunct "*" ->
        advance p;
        loop { e = Binop (Mul, acc, unary_expr p); pos = acc.pos }
    | Tpunct "/" ->
        advance p;
        loop { e = Binop (Div, acc, unary_expr p); pos = acc.pos }
    | Tpunct "%" ->
        advance p;
        loop { e = Binop (Rem, acc, unary_expr p); pos = acc.pos }
    | _ -> acc
  in
  loop (unary_expr p)

and unary_expr (p : st) : expr =
  match peek p with
  | Tpunct "-" ->
      let pos = pos_here p in
      advance p;
      { e = Neg (unary_expr p); pos }
  | _ -> postfix_expr p

and postfix_expr (p : st) : expr =
  let rec loop acc =
    match peek p with
    | Tpunct "." -> (
        advance p;
        let name = ident p in
        match peek p with
        | Tpunct "(" ->
            let args = arg_list p in
            loop { e = Call (Instance_call (acc, name, args)); pos = acc.pos }
        | _ ->
            if String.equal name "length" then
              loop { e = Length acc; pos = acc.pos }
            else loop { e = Field (acc, name); pos = acc.pos })
    | Tpunct "[" ->
        advance p;
        let idx = expr p in
        eat_punct p "]";
        loop { e = Index (acc, idx); pos = acc.pos }
    | _ -> acc
  in
  loop (primary_expr p)

and primary_expr (p : st) : expr =
  let pos = pos_here p in
  match peek p with
  | Tint_lit n ->
      advance p;
      { e = Int_lit n; pos }
  | Tkw "null" ->
      advance p;
      { e = Null; pos }
  | Tkw "this" ->
      advance p;
      { e = Local "this"; pos }
  | Tkw "new" -> (
      advance p;
      match peek p with
      | Tkw "int" ->
          advance p;
          eat_punct p "[";
          let len = expr p in
          eat_punct p "]";
          { e = New_arr (Eint, len); pos }
      | Tident c -> (
          advance p;
          match peek p with
          | Tpunct "(" ->
              let args = arg_list p in
              { e = New_obj (c, args); pos }
          | Tpunct "[" ->
              advance p;
              let len = expr p in
              eat_punct p "]";
              { e = New_arr (Eobj c, len); pos }
          | t ->
              errf p "expected (args) or [length] after new %s, found %s" c
                (string_of_token t))
      | t -> errf p "expected a type after new, found %s" (string_of_token t))
  | Tident name -> (
      advance p;
      match peek p with
      | Tpunct "(" ->
          (* unqualified call: method of the enclosing class; resolved in
             Compile against the current class *)
          let args = arg_list p in
          { e = Call (Static_call ("", name, args)); pos }
      | _ -> { e = Local name; pos })
  | Tpunct "(" ->
      advance p;
      let e = expr p in
      eat_punct p ")";
      e
  | t -> errf p "expected an expression, found %s" (string_of_token t)

and arg_list (p : st) : expr list =
  eat_punct p "(";
  if peek p = Tpunct ")" then begin
    advance p;
    []
  end
  else begin
    let rec loop acc =
      let acc = expr p :: acc in
      match peek p with
      | Tpunct "," ->
          advance p;
          loop acc
      | _ ->
          eat_punct p ")";
          List.rev acc
    in
    loop []
  end

(* ---- conditions -------------------------------------------------------- *)

let cmpop_of = function
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | _ -> None

let rec cond (p : st) : cond = or_cond p

and or_cond (p : st) : cond =
  let rec loop acc =
    match peek p with
    | Tpunct "||" ->
        advance p;
        loop { c = Or (acc, and_cond p); cpos = acc.cpos }
    | _ -> acc
  in
  loop (and_cond p)

and and_cond (p : st) : cond =
  let rec loop acc =
    match peek p with
    | Tpunct "&&" ->
        advance p;
        loop { c = And (acc, primary_cond p); cpos = acc.cpos }
    | _ -> acc
  in
  loop (primary_cond p)

and primary_cond (p : st) : cond =
  let cpos = pos_here p in
  match peek p with
  | Tpunct "!" ->
      advance p;
      { c = Not (primary_cond p); cpos }
  | Tpunct "(" -> (
      (* backtracking: "(" may open a nested condition or a parenthesized
         arithmetic operand of a comparison *)
      let save = p.cur in
      match
        advance p;
        let inner = cond p in
        eat_punct p ")";
        inner
      with
      | inner -> { c = inner.c; cpos }
      | exception Parse_error _ ->
          p.cur <- save;
          comparison p)
  | _ -> comparison p

and comparison (p : st) : cond =
  let cpos = pos_here p in
  let lhs = expr p in
  match peek p with
  | Tpunct s when cmpop_of s <> None ->
      advance p;
      let rhs = expr p in
      { c = Cmp (Option.get (cmpop_of s), lhs, rhs); cpos }
  | t -> errf p "expected a comparison operator, found %s" (string_of_token t)

(* ---- statements -------------------------------------------------------- *)

(** A "simple" statement (no trailing [;]): declaration, assignment, or
    call for effect. *)
let rec simple_stmt (p : st) : stmt =
  let spos = pos_here p in
  let is_decl_start =
    match peek p, peek2 p, peek3 p with
    | Tkw "int", _, _ -> true
    | Tident _, Tident _, _ -> true  (* C x = ... *)
    | Tident _, Tpunct "[", Tpunct "]" -> true  (* C[] x = ... *)
    | _ -> false
  in
  if is_decl_start then begin
    let t = ty p in
    let name = ident p in
    eat_punct p "=";
    let e = expr p in
    { s = Decl (t, name, e); spos }
  end
  else begin
    let lhs = postfix_expr p in
    match peek p with
    | Tpunct "=" -> (
        advance p;
        let rhs = expr p in
        match lhs.e with
        | Local x -> { s = Assign_local (x, rhs); spos }
        | Field (base, f) -> { s = Assign_field (base, f, rhs); spos }
        | Index (arr, idx) -> { s = Assign_index (arr, idx, rhs); spos }
        | _ -> errf p "this expression cannot be assigned to")
    | _ -> (
        match lhs.e with
        | Call c -> { s = Expr_stmt c; spos }
        | _ -> errf p "expected '=' or a call statement")
  end

and stmt (p : st) : stmt =
  let spos = pos_here p in
  match peek p with
  | Tkw "if" ->
      advance p;
      eat_punct p "(";
      let c = cond p in
      eat_punct p ")";
      let then_ = block p in
      let else_ =
        match peek p with
        | Tkw "else" -> (
            advance p;
            match peek p with
            | Tkw "if" -> [ stmt p ]  (* else-if chain *)
            | _ -> block p)
        | _ -> []
      in
      { s = If (c, then_, else_); spos }
  | Tkw "while" ->
      advance p;
      eat_punct p "(";
      let c = cond p in
      eat_punct p ")";
      { s = While (c, block p); spos }
  | Tkw "for" ->
      advance p;
      eat_punct p "(";
      let init =
        if peek p = Tpunct ";" then None else Some (simple_stmt p)
      in
      eat_punct p ";";
      let c = cond p in
      eat_punct p ";";
      let step =
        if peek p = Tpunct ")" then None else Some (simple_stmt p)
      in
      eat_punct p ")";
      { s = For (init, c, step, block p); spos }
  | Tkw "return" ->
      advance p;
      let e = if peek p = Tpunct ";" then None else Some (expr p) in
      eat_punct p ";";
      { s = Return e; spos }
  | Tkw "spawn" ->
      advance p;
      let c = ident p in
      eat_punct p ".";
      let m = ident p in
      let args = arg_list p in
      eat_punct p ";";
      { s = Spawn (c, m, args); spos }
  | _ ->
      let st = simple_stmt p in
      eat_punct p ";";
      st

and block (p : st) : stmt list =
  eat_punct p "{";
  let rec loop acc =
    if peek p = Tpunct "}" then begin
      advance p;
      List.rev acc
    end
    else loop (stmt p :: acc)
  in
  loop []

(* ---- classes ----------------------------------------------------------- *)

let rec member (p : st) (cls_name : string) :
    [ `Field of field | `Meth of meth ] =
  let m_pos = pos_here p in
  let is_static =
    match peek p with
    | Tkw "static" ->
        advance p;
        true
    | _ -> false
  in
  match peek p with
  | Tkw "void" ->
      advance p;
      let name = ident p in
      let params = param_list p in
      let body = block p in
      `Meth
        {
          m_name = name;
          m_static = is_static;
          m_ctor = false;
          m_ret = None;
          m_params = params;
          m_body = body;
          m_pos;
        }
  | Tident c when (not is_static) && String.equal c cls_name && peek2 p = Tpunct "(" ->
      (* constructor *)
      advance p;
      let params = param_list p in
      let body = block p in
      `Meth
        {
          m_name = "<init>";
          m_static = false;
          m_ctor = true;
          m_ret = None;
          m_params = params;
          m_body = body;
          m_pos;
        }
  | _ -> (
      let t = ty p in
      let name = ident p in
      match peek p with
      | Tpunct ";" ->
          advance p;
          `Field { f_name = name; f_ty = t; f_static = is_static }
      | Tpunct "(" ->
          let params = param_list p in
          let body = block p in
          `Meth
            {
              m_name = name;
              m_static = is_static;
              m_ctor = false;
              m_ret = Some t;
              m_params = params;
              m_body = body;
              m_pos;
            }
      | t' ->
          errf p "expected ';' or '(' after member %s, found %s" name
            (string_of_token t'))

and param_list (p : st) : (ty * string) list =
  eat_punct p "(";
  if peek p = Tpunct ")" then begin
    advance p;
    []
  end
  else begin
    let rec loop acc =
      let t = ty p in
      let name = ident p in
      let acc = (t, name) :: acc in
      match peek p with
      | Tpunct "," ->
          advance p;
          loop acc
      | _ ->
          eat_punct p ")";
          List.rev acc
    in
    loop []
  end

let parse_class (p : st) : cls =
  eat_kw p "class";
  let c_name = ident p in
  eat_punct p "{";
  let rec loop fields methods =
    if peek p = Tpunct "}" then begin
      advance p;
      { c_name; c_fields = List.rev fields; c_methods = List.rev methods }
    end
    else
      match member p c_name with
      | `Field f -> loop (f :: fields) methods
      | `Meth m -> loop fields (m :: methods)
  in
  loop [] []

let parse_program (src : string) : program =
  let toks = Array.of_list (Jlexer.tokenize src) in
  let p = { toks; cur = 0 } in
  let rec loop acc =
    match peek p with
    | Teof -> List.rev acc
    | _ -> loop (parse_class p :: acc)
  in
  loop []

let pp_error ppf = function
  | Parse_error { pos; message } ->
      Fmt.pf ppf "minijava: %d:%d: %s" pos.line pos.col message
  | Jlexer.Lex_error { pos; message } ->
      Fmt.pf ppf "minijava: %d:%d: %s" pos.line pos.col message
  | e -> Fmt.string ppf (Printexc.to_string e)
