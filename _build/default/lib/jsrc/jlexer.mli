(** Hand-written lexer for mini-Java: identifiers, integer literals,
    keywords, longest-match punctuation; [//] and [/* */] comments. *)

type token =
  | Tident of string
  | Tint_lit of int
  | Tkw of string
  | Tpunct of string
  | Teof

type spanned = { tok : token; pos : Ast.pos }

exception Lex_error of { pos : Ast.pos; message : string }

val keywords : string list
val tokenize : string -> spanned list
val string_of_token : token -> string
