(** Recursive-descent parser for mini-Java.  The [foo.bar] ambiguity
    (field of a local vs. static of a class) parses as a field access and
    is resolved by {!Compile}. *)

exception Parse_error of { pos : Ast.pos; message : string }

val parse_program : string -> Ast.program

val pp_error : exn Fmt.t
(** Render a parse or lex error for the user. *)
