(** Abstract syntax for mini-Java, the source language the paper writes
    its examples in (§2.4, §3.1).

    The subset is exactly what the paper's code fragments need: classes
    with int/reference fields and statics, constructors, static and
    instance methods (direct dispatch), single-dimension arrays,
    structured control flow with short-circuit conditions, allocation,
    field/array/static assignment, calls, and [spawn] for starting
    threads. *)

type pos = { line : int; col : int }

type ty =
  | Tint
  | Tobj of string  (** class type *)
  | Tarr of elem_ty  (** single-dimension array *)

and elem_ty = Eint | Eobj of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem  (** [%] *)

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr = { e : expr_node; pos : pos }

and expr_node =
  | Int_lit of int
  | Null
  | Local of string  (** also [this] *)
  | Field of expr * string  (** [e.f] *)
  | Static_field of string * string  (** [C.f] *)
  | Index of expr * expr  (** [e[i]] *)
  | Length of expr  (** [e.length] *)
  | New_obj of string * expr list  (** [new C(args)] *)
  | New_arr of elem_ty * expr  (** [new C[n]], [new int[n]] *)
  | Call of call
  | Binop of binop * expr * expr
  | Neg of expr

and call =
  | Static_call of string * string * expr list  (** [C.m(args)] *)
  | Instance_call of expr * string * expr list  (** [e.m(args)] *)

(** Conditions are a separate syntactic class (there is no bool value
    type), giving natural short-circuit compilation. *)
type cond = { c : cond_node; cpos : pos }

and cond_node =
  | Cmp of cmpop * expr * expr  (** int comparison, or ref ==/!= *)
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Decl of ty * string * expr  (** [ty x = e;] *)
  | Assign_local of string * expr
  | Assign_field of expr * string * expr  (** [e.f = e;] *)
  | Assign_static of string * string * expr
  | Assign_index of expr * expr * expr  (** [e[i] = e;] *)
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | For of stmt option * cond * stmt option * stmt list
      (** [for (init; cond; step) body] — init/step are simple statements *)
  | Return of expr option
  | Expr_stmt of call  (** call for effect *)
  | Spawn of string * string * expr list  (** [spawn C.m(args);] *)

type meth = {
  m_name : string;
  m_static : bool;
  m_ctor : bool;
  m_ret : ty option;
  m_params : (ty * string) list;  (** excluding the implicit [this] *)
  m_body : stmt list;
  m_pos : pos;
}

type field = { f_name : string; f_ty : ty; f_static : bool }

type cls = {
  c_name : string;
  c_fields : field list;
  c_methods : meth list;
}

type program = cls list

let erase : ty -> Jir.Types.ty = function
  | Tint -> Jir.Types.I
  | Tobj _ | Tarr _ -> Jir.Types.R

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tobj c -> Fmt.string ppf c
  | Tarr Eint -> Fmt.string ppf "int[]"
  | Tarr (Eobj c) -> Fmt.pf ppf "%s[]" c

let equal_ty a b =
  match a, b with
  | Tint, Tint -> true
  | Tobj c1, Tobj c2 -> String.equal c1 c2
  | Tarr Eint, Tarr Eint -> true
  | Tarr (Eobj c1), Tarr (Eobj c2) -> String.equal c1 c2
  | (Tint | Tobj _ | Tarr _), _ -> false
