lib/jsrc/jlexer.ml: Ast List Printf String
