lib/jsrc/compile.ml: Ast Fmt Hashtbl Jir Jparser Lazy List Option Printf
