lib/jsrc/jparser.mli: Ast Fmt
