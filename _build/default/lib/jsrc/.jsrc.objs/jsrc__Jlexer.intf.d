lib/jsrc/jlexer.mli: Ast
