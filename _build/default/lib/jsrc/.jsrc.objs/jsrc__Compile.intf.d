lib/jsrc/compile.mli: Ast Fmt Jir
