lib/jsrc/ast.ml: Fmt Jir String
