lib/jsrc/jparser.ml: Array Ast Fmt Jlexer List Option Printexc String
