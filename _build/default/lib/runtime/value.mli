(** Runtime values: null, integers, and references to heap objects by
    id. *)

type t = Null | Int of int | Ref of int

val equal : t -> t -> bool
val pp : t Fmt.t
val is_ref : t -> bool
val to_ref_opt : t -> int option
