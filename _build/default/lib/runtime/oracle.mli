(** Synchronous reachability oracle: exact reachable sets used to capture
    the logical snapshot when SATB marking starts and to verify collector
    invariants.  Exists purely to {e check} the algorithms. *)

module Iset : Set.S with type elt = int

val reachable : Heap.t -> int list -> Iset.t
