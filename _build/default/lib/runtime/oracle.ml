(** Synchronous reachability oracle.

    The simulator can stop the world for free, so we compute exact
    reachable sets to (a) capture the logical snapshot when SATB marking
    starts and (b) verify collector invariants at the end of each cycle.
    A production collector obviously has no such oracle — it exists purely
    to {e check} the algorithms. *)

module Iset = Set.Make (Int)

(** Objects reachable from the given root ids. *)
let reachable (heap : Heap.t) (roots : int list) : Iset.t =
  let rec go seen = function
    | [] -> seen
    | id :: todo ->
        if Iset.mem id seen then go seen todo
        else
          let o = Heap.get heap id in
          let seen = Iset.add id seen in
          go seen (List.rev_append (Heap.out_edges o) todo)
  in
  go Iset.empty roots
