lib/runtime/interp.mli: Barrier_cost Fmt Gc_hooks Hashtbl Heap Jir Value
