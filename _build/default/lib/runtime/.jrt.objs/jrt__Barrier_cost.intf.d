lib/runtime/barrier_cost.mli:
