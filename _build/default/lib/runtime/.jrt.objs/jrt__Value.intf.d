lib/runtime/value.mli: Fmt
