lib/runtime/interp.ml: Array Barrier_cost Fmt Gc_hooks Hashtbl Heap Jir List Value
