lib/runtime/satb_gc.ml: Array Gc_hooks Heap List Oracle Value
