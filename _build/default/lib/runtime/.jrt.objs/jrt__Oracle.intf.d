lib/runtime/oracle.mli: Heap Set
