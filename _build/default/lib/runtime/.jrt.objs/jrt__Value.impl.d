lib/runtime/value.ml: Fmt
