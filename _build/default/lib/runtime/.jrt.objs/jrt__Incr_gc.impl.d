lib/runtime/incr_gc.ml: Gc_hooks Heap List Oracle
