lib/runtime/oracle.ml: Heap Int List Set
