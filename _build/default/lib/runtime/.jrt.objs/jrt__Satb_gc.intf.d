lib/runtime/satb_gc.mli: Gc_hooks Heap Oracle Value
