lib/runtime/runner.mli: Interp Jir
