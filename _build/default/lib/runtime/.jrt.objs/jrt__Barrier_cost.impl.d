lib/runtime/barrier_cost.ml:
