lib/runtime/heap.ml: Array Jir List Value
