lib/runtime/incr_gc.mli: Gc_hooks Heap Oracle Value
