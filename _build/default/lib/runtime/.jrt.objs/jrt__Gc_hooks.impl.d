lib/runtime/gc_hooks.ml: Heap Value
