lib/runtime/gc_hooks.mli: Heap Value
