lib/runtime/heap.mli: Jir Value
