lib/runtime/runner.ml: Gc_hooks Heap Incr_gc Interp Jir List Satb_gc
