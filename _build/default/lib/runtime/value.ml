(** Runtime values: null, 63-bit integers (standing in for Java's 32-bit
    ints), and references to heap objects by id. *)

type t = Null | Int of int | Ref of int

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Ref x, Ref y -> x = y
  | (Null | Int _ | Ref _), _ -> false

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Int n -> Fmt.int ppf n
  | Ref id -> Fmt.pf ppf "#%d" id

let is_ref = function Ref _ -> true | Null | Int _ -> false

let to_ref_opt = function Ref id -> Some id | Null | Int _ -> None
