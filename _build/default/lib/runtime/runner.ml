(** Deterministic execution harness: interleaves mutator threads and
    collector increments, triggers and finishes marking cycles, and
    produces a run report.

    Scheduling is a round-robin over live threads with a fixed (optionally
    seed-jittered) quantum; collector increments run every
    [gc_period] mutator instructions.  Everything is deterministic for a
    given seed, which the soundness property tests exploit to explore many
    adversarial mutator/collector interleavings. *)

type gc_choice =
  | No_gc
  | Satb of { steps_per_increment : int; trigger_allocs : int }
  | Incr of { steps_per_increment : int; trigger_allocs : int }

let make_satb ?(steps_per_increment = 64) ?(trigger_allocs = 512) () =
  Satb { steps_per_increment; trigger_allocs }

let make_incr ?(steps_per_increment = 64) ?(trigger_allocs = 512) () =
  Incr { steps_per_increment; trigger_allocs }

type gc_summary = {
  cycles : int;
  total_violations : int;
  final_pause_works : int list;  (** per cycle, oldest first *)
  mark_increments : int list;
  logged_or_dirtied : int list;
      (** SATB buffer entries / dirty cards, per cycle *)
}

type report = {
  machine : Interp.t;
  steps : int;
  dyn : Interp.dyn_stats;
  cost_units : int;
  barrier_units : int;
  gc : gc_summary option;
  thread_errors : (int * string) list;
}

(** Simple deterministic PRNG for quantum jitter. *)
let lcg seed =
  let state = ref (if seed = 0 then 1 else seed) in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    let v = (!state lsr 16) land 0x3FFF in
    1 + (v mod bound)

let run ?(cfg = Interp.default_config) ?(gc = No_gc) ?(quantum = 50)
    ?(seed = 0) ?(gc_period = 32) (prog : Jir.Program.t)
    ~(entry : Jir.Types.method_ref) : report =
  let m = Interp.create ~cfg prog in
  let _main = Interp.spawn_thread m entry [] in
  let rand = lcg seed in
  (* collector wiring *)
  let satb_state = ref None in
  let incr_state = ref None in
  let trigger =
    match gc with
    | No_gc -> max_int
    | Satb { trigger_allocs; _ } | Incr { trigger_allocs; _ } -> trigger_allocs
  in
  (match gc with
  | No_gc -> ()
  | Satb { steps_per_increment; _ } ->
      let t =
        Satb_gc.create ~steps_per_increment m.Interp.heap ~roots:(fun () ->
            Interp.roots m)
      in
      satb_state := Some t;
      Interp.set_collector m (Satb_gc.hooks t)
  | Incr { steps_per_increment; _ } ->
      let t =
        Incr_gc.create ~steps_per_increment m.Interp.heap ~roots:(fun () ->
            Interp.roots m)
      in
      incr_state := Some t;
      Interp.set_collector m (Incr_gc.hooks t));
  let satb_reports = ref [] in
  let incr_reports = ref [] in
  let marking_active () =
    match !satb_state, !incr_state with
    | Some t, _ -> Satb_gc.is_marking t
    | _, Some t -> Incr_gc.is_marking t
    | None, None -> false
  in
  let last_cycle_alloc = ref 0 in
  let maybe_start_cycle () =
    if
      (not (marking_active ()))
      && m.Interp.heap.Heap.total_allocated - !last_cycle_alloc >= trigger
    then begin
      (match !satb_state with Some t -> Satb_gc.start_cycle t | None -> ());
      match !incr_state with Some t -> Incr_gc.start_cycle t | None -> ()
    end
  in
  (* main scheduling loop *)
  let since_gc = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let runnable = List.filter (fun th -> not th.Interp.finished) m.Interp.threads in
    if runnable = [] then continue_ := false
    else begin
      List.iter
        (fun th ->
          let q = if seed = 0 then quantum else rand quantum in
          let k = ref 0 in
          while !k < q && not th.Interp.finished do
            ignore (Interp.step m th);
            incr k;
            incr since_gc;
            if !since_gc >= gc_period then begin
              since_gc := 0;
              m.Interp.gc.Gc_hooks.step ();
              maybe_start_cycle ();
              (* finish once the concurrent phase has gone quiescent *)
              (match !satb_state with
              | Some t when Satb_gc.quiescent t ->
                  satb_reports := Satb_gc.finish_cycle t :: !satb_reports;
                  last_cycle_alloc := m.Interp.heap.Heap.total_allocated
              | Some _ | None -> ());
              match !incr_state with
              | Some t when Incr_gc.quiescent t ->
                  incr_reports := Incr_gc.finish_cycle t :: !incr_reports;
                  last_cycle_alloc := m.Interp.heap.Heap.total_allocated
              | Some _ | None -> ()
            end
          done)
        runnable
    end
  done;
  (* finish any in-flight cycle so its invariants still get checked *)
  (match !satb_state with
  | Some t when Satb_gc.is_marking t ->
      satb_reports := Satb_gc.finish_cycle t :: !satb_reports
  | Some _ | None -> ());
  (match !incr_state with
  | Some t when Incr_gc.is_marking t ->
      incr_reports := Incr_gc.finish_cycle t :: !incr_reports
  | Some _ | None -> ());
  let gc_summary =
    match gc with
    | No_gc -> None
    | Satb _ ->
        let rs = List.rev !satb_reports in
        Some
          {
            cycles = List.length rs;
            total_violations =
              List.fold_left (fun a (r : Satb_gc.cycle_report) -> a + r.violations) 0 rs;
            final_pause_works =
              List.map (fun (r : Satb_gc.cycle_report) -> r.final_pause_work) rs;
            mark_increments =
              List.map (fun (r : Satb_gc.cycle_report) -> r.increments) rs;
            logged_or_dirtied =
              List.map (fun (r : Satb_gc.cycle_report) -> r.logged) rs;
          }
    | Incr _ ->
        let rs = List.rev !incr_reports in
        Some
          {
            cycles = List.length rs;
            total_violations =
              List.fold_left (fun a (r : Incr_gc.cycle_report) -> a + r.violations) 0 rs;
            final_pause_works =
              List.map (fun (r : Incr_gc.cycle_report) -> r.final_pause_work) rs;
            mark_increments =
              List.map (fun (r : Incr_gc.cycle_report) -> r.increments) rs;
            logged_or_dirtied =
              List.map (fun (r : Incr_gc.cycle_report) -> r.dirty_cards) rs;
          }
  in
  {
    machine = m;
    steps = m.Interp.instr_count;
    dyn = Interp.dyn_stats m;
    cost_units = m.Interp.cost_units;
    barrier_units = m.Interp.barrier_units;
    gc = gc_summary;
    thread_errors =
      List.filter_map
        (fun th ->
          match th.Interp.error with
          | Some e -> Some (th.Interp.tid, e)
          | None -> None)
        m.Interp.threads;
  }
