(** E3 — the paper's Figure 2: inline limit vs analysis effectiveness and
    compile time, in modes B/F/A. *)

val limits : int list
val modes : Satb_core.Analysis.mode list

type point = {
  bench : string;
  limit : int;
  mode : Satb_core.Analysis.mode;
  elim_pct : float;
  compile_s : float;
}

val measure_one :
  ?reps:int ->
  Workloads.Spec.t ->
  limit:int ->
  mode:Satb_core.Analysis.mode ->
  point

val measure : ?reps:int -> unit -> point list
val render : point list -> string
val print : unit -> unit
