lib/harness/ablation.mli: Satb_core Workloads
