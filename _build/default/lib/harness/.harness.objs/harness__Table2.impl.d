lib/harness/table2.ml: Exp Jrt List Printf Tablefmt Workloads
