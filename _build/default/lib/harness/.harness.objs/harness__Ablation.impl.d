lib/harness/ablation.ml: Fmt Jrt List Satb_core Tablefmt Workloads
