lib/harness/static_counts.mli: Satb_core Workloads
