lib/harness/nullsame.ml: Exp List Tablefmt Workloads
