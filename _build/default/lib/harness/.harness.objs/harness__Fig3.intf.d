lib/harness/fig3.mli: Workloads
