lib/harness/exp.mli: Jrt Satb_core Workloads
