lib/harness/nullsame.mli: Workloads
