lib/harness/tablefmt.mli:
