lib/harness/fig2.ml: Buffer Exp List Printf Satb_core Tablefmt Workloads
