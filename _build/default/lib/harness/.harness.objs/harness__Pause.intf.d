lib/harness/pause.mli: Workloads
