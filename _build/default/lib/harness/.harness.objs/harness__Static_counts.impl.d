lib/harness/static_counts.ml: Exp List Satb_core Tablefmt Workloads
