lib/harness/movedown.mli: Workloads
