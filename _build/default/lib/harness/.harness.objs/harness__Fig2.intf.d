lib/harness/fig2.mli: Satb_core Workloads
