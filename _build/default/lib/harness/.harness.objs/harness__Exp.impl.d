lib/harness/exp.ml: Fmt Jrt Satb_core Workloads
