lib/harness/table1.mli: Jrt Workloads
