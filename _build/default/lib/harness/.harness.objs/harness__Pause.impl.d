lib/harness/pause.ml: Exp Float Fmt Jrt List Printf Tablefmt Workloads
