lib/harness/table1.ml: Exp Fmt Jrt List Printf Tablefmt Workloads
