lib/harness/tablefmt.ml: Array List Printf String
