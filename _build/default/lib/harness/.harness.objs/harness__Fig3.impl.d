lib/harness/fig3.ml: Exp List Printf Satb_core Tablefmt Workloads
