lib/harness/movedown.ml: Exp Jrt List Tablefmt Workloads
