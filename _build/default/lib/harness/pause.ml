(** E5 — SATB vs incremental-update final pause work (§1 and §4.5).

    Both collectors run with the same concurrent-increment budget on the
    same workload; we compare the work done inside the final
    stop-the-world pause.  The paper's claim: SATB remark pauses (drain
    the leftover log buffers) are often an order of magnitude smaller than
    incremental-update final pauses (rescan roots + dirty cards + trace
    everything allocated during the cycle). *)

type row = {
  bench : string;
  satb_cycles : int;
  satb_max_pause : int;
  incr_cycles : int;
  incr_max_pause : int;
  ratio : float;  (** incr / satb max pause work *)
}

let max_or_zero = function [] -> 0 | l -> List.fold_left max 0 l

let measure_one ?(trigger_allocs = 16) ?(steps_per_increment = 16)
    (w : Workloads.Spec.t) : row =
  (* The SATB run uses the analysis-directed elision policy; the
     incremental-update run keeps every barrier, because pre-null elision
     is an SATB-specific optimization: a card-marking collector must hear
     about stores of fresh pointers into already-scanned objects even when
     the overwritten value was null. *)
  let go ~use_policy gc =
    let cw = Exp.compile w in
    let r = Exp.run ~use_policy ~gc cw in
    match r.gc with
    | Some g ->
        if g.total_violations > 0 then
          Fmt.failwith "%s: marking invariant violated" w.name;
        (g.cycles, max_or_zero g.final_pause_works)
    | None -> (0, 0)
  in
  let satb_cycles, satb_max_pause =
    go ~use_policy:true (Jrt.Runner.Satb { steps_per_increment; trigger_allocs })
  in
  let incr_cycles, incr_max_pause =
    go ~use_policy:false
      (Jrt.Runner.Incr { steps_per_increment; trigger_allocs })
  in
  {
    bench = w.name;
    satb_cycles;
    satb_max_pause;
    incr_cycles;
    incr_max_pause;
    ratio =
      (* a zero SATB pause is reported as if it cost one unit *)
      float_of_int incr_max_pause /. float_of_int (max 1 satb_max_pause);
  }

let measure ?trigger_allocs ?steps_per_increment () : row list =
  List.map
    (measure_one ?trigger_allocs ?steps_per_increment)
    Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          string_of_int r.satb_cycles;
          string_of_int r.satb_max_pause;
          string_of_int r.incr_cycles;
          string_of_int r.incr_max_pause;
          (if Float.is_nan r.ratio then "-" else Printf.sprintf "%.1fx" r.ratio);
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "satb cycles";
        "satb max pause";
        "incr cycles";
        "incr max pause";
        "incr/satb";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
