(** E4 — the paper's Figure 3: effect of the analyses on compiled code
    size at inline limit 100 (code-size model in {!Satb_core.Driver}). *)

type row = { bench : string; size_b : int; size_f : int; size_a : int }

val measure_one : ?inline_limit:int -> Workloads.Spec.t -> row
val measure : ?inline_limit:int -> unit -> row list
val render : row list -> string
val print : unit -> unit
