(** Minimal fixed-width text tables for experiment output. *)

type align = L | R

val render : header:string list -> align:align list -> string list list -> string
val pct : int -> int -> string
val f1 : float -> string
val f3 : float -> string
