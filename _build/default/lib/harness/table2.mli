(** E2 — the paper's Table 2: jbb end-to-end barrier cost under
    no-barrier / always-log / always-log-elim modes (§4.5), via the RISC
    cost model. *)

type row = { mode : string; cost_units : int; relative : float }

val paper : (string * float) list
val measure : ?workload:Workloads.Spec.t -> unit -> row list
val render : row list -> string
val print : unit -> unit
