(** E8 — the §4.3 move-down (delete-by-shift) extension: additional
    elimination with the shift-chain analysis enabled, plus the SATB
    violation count proving it sound under the descending-scan
    contract. *)

type row = {
  bench : string;
  elim_base_pct : float;
  elim_md_pct : float;
  array_base_pct : float;
  array_md_pct : float;
  violations : int;
}

val measure_one : Workloads.Spec.t -> row
val measure : unit -> row list
val render : row list -> string
val print : unit -> unit
