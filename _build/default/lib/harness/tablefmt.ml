(** Minimal fixed-width text tables for experiment output. *)

type align = L | R

let render ~(header : string list) ~(align : align list)
    (rows : string list list) : string =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    let a = List.nth align i in
    match a with
    | L -> cell ^ String.make n ' '
    | R -> String.make n ' ' ^ cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  "
      (List.init cols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%.1f" (100.0 *. float_of_int num /. float_of_int den)

let f1 v = Printf.sprintf "%.1f" v
let f3 v = Printf.sprintf "%.3f" v
