(** E5 — SATB vs incremental-update final pause work under equal
    concurrent budgets (the paper's §1 motivation).  The incremental run
    keeps every barrier: pre-null elision is SATB-specific. *)

type row = {
  bench : string;
  satb_cycles : int;
  satb_max_pause : int;
  incr_cycles : int;
  incr_max_pause : int;
  ratio : float;
}

val measure_one :
  ?trigger_allocs:int -> ?steps_per_increment:int -> Workloads.Spec.t -> row

val measure :
  ?trigger_allocs:int -> ?steps_per_increment:int -> unit -> row list

val render : row list -> string
val print : unit -> unit
