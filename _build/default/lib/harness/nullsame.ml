(** E6 — the §4.3 null-or-same extension, implemented.

    The paper identified (by inspection) store sites that either overwrite
    null or rewrite the value the field already contains — 15%% of
    executed barriers in javac, 14%% in jack, 4%% in jbb — and left
    automating the reasoning as future work.  Our analysis implements it
    (value-level null-or-same facts with σ-refinement on null branches);
    this experiment reports the additional dynamic elimination it buys on
    top of the field+array analyses. *)

type row = {
  bench : string;
  elim_base_pct : float;  (** mode A *)
  elim_nos_pct : float;  (** mode A + null-or-same *)
  delta_pct : float;
  paper_delta_pct : float option;
}

let paper_deltas = [ ("javac", 15.0); ("jack", 14.0); ("jbb", 4.0) ]

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one (w : Workloads.Spec.t) : row =
  let elim ~null_or_same =
    let cw = Exp.compile ~null_or_same w in
    let r = Exp.run cw in
    pct r.dyn.elided_execs r.dyn.total_execs
  in
  let base = elim ~null_or_same:false in
  let nos = elim ~null_or_same:true in
  {
    bench = w.name;
    elim_base_pct = base;
    elim_nos_pct = nos;
    delta_pct = nos -. base;
    paper_delta_pct = List.assoc_opt w.name paper_deltas;
  }

let measure () : row list =
  List.map measure_one Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          Tablefmt.f1 r.elim_base_pct;
          Tablefmt.f1 r.elim_nos_pct;
          Tablefmt.f1 r.delta_pct;
          (match r.paper_delta_pct with
          | Some v -> Tablefmt.f1 v
          | None -> "-");
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [ "benchmark"; "A elim%"; "A+nos elim%"; "delta"; "paper est." ]
    ~align:[ Tablefmt.L; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
