(** E6 — the §4.3 null-or-same extension: additional dynamic elimination
    over the field+array analyses, against the paper's by-inspection
    estimates (javac 15%, jack 14%, jbb 4%). *)

type row = {
  bench : string;
  elim_base_pct : float;
  elim_nos_pct : float;
  delta_pct : float;
  paper_delta_pct : float option;
}

val paper_deltas : (string * float) list
val measure_one : Workloads.Spec.t -> row
val measure : unit -> row list
val render : row list -> string
val print : unit -> unit
