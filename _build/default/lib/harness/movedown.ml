(** E8 — the §4.3 "array rearrangements" extension, implemented for the
    delete-by-shift (move-down) idiom.

    The paper observes that jbb's hottest uneliminated store sites sit in
    loops that delete an element from an object array by moving every
    later element down one slot: taken as a whole such a loop overwrites
    only one reference value, so with collector cooperation only that one
    value needs logging.  It proposes eliminating the loop's barriers when
    "the direction of collector array scanning agrees with the direction
    of object movement".

    Our implementation: the clear-first form of the idiom (null the
    deleted slot — that store keeps its barrier and logs the deleted
    value — then shift down), a shift-chain dataflow domain over
    must-identified arrays, a single-mutator gate (§4.3's multi-mutator
    caveat), and a SATB marker contracted to scan object arrays in
    descending index order, in bounded chunks.  The soundness argument is
    checked end to end by the oracle under adversarial schedules. *)

type row = {
  bench : string;
  elim_base_pct : float;  (** mode A *)
  elim_md_pct : float;  (** mode A + move-down *)
  array_base_pct : float;
  array_md_pct : float;
  violations : int;  (** SATB violations with move-down elision active *)
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one (w : Workloads.Spec.t) : row =
  let go ~move_down =
    let cw = Exp.compile ~move_down w in
    let r =
      Exp.run
        ~gc:(Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 ())
        cw
    in
    let v = match r.gc with Some g -> g.total_violations | None -> 0 in
    (r.dyn, v)
  in
  let base, _ = go ~move_down:false in
  let md, violations = go ~move_down:true in
  {
    bench = w.name;
    elim_base_pct = pct base.elided_execs base.total_execs;
    elim_md_pct = pct md.elided_execs md.total_execs;
    array_base_pct = pct base.array_elided base.array_execs;
    array_md_pct = pct md.array_elided md.array_execs;
    violations;
  }

let measure () : row list =
  List.map measure_one Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        [
          r.bench;
          Tablefmt.f1 r.elim_base_pct;
          Tablefmt.f1 r.elim_md_pct;
          Tablefmt.f1 r.array_base_pct;
          Tablefmt.f1 r.array_md_pct;
          string_of_int r.violations;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "A elim%";
        "A+md elim%";
        "A array%";
        "A+md array%";
        "violations";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
