(** E7 — static elimination counts (the tech-report companion to
    Table 1). *)

type row = {
  bench : string;
  stats : Satb_core.Driver.static_stats;
  dyn_elim_pct : float;
}

val measure_one : Workloads.Spec.t -> row
val measure : unit -> row list
val render : row list -> string
val print : unit -> unit
