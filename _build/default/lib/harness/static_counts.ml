(** E7 — static elimination counts (the companion to Table 1, reported in
    the paper's technical report and referenced in §4.2: static results
    determine the effect on compiled code space, and the static
    elimination rate is generally {e higher} than the dynamic rate because
    array barriers concentrate in loops). *)

type row = {
  bench : string;
  stats : Satb_core.Driver.static_stats;
  dyn_elim_pct : float;
}

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure_one (w : Workloads.Spec.t) : row =
  let cw = Exp.compile w in
  let r = Exp.run cw in
  {
    bench = w.name;
    stats = Satb_core.Driver.static_stats cw.compiled;
    dyn_elim_pct = pct r.dyn.elided_execs r.dyn.total_execs;
  }

let measure () : row list = List.map measure_one Workloads.Registry.table1

let render (rows : row list) : string =
  let body =
    List.map
      (fun r ->
        let s = r.stats in
        [
          r.bench;
          string_of_int s.total_sites;
          string_of_int s.elided_sites;
          Tablefmt.pct s.elided_sites s.total_sites;
          Tablefmt.pct s.field_elided s.field_sites;
          Tablefmt.pct s.array_elided s.array_sites;
          Tablefmt.f1 r.dyn_elim_pct;
        ])
      rows
  in
  Tablefmt.render
    ~header:
      [
        "benchmark";
        "sites";
        "elided";
        "static elim%";
        "field elim%";
        "array elim%";
        "dynamic elim%";
      ]
    ~align:[ Tablefmt.L; R; R; R; R; R; R ]
    body

let print () = print_endline (render (measure ()))
