(** E1 — reproduction of the paper's Table 1 (dynamic analysis results).
    Absolute totals differ (synthetic workloads); the shape is what must
    match — see EXPERIMENTS.md. *)

type row = {
  name : string;
  dyn : Jrt.Interp.dyn_stats;
  paper : Workloads.Spec.paper_row option;
}

val measure : ?inline_limit:int -> Workloads.Spec.t -> row
(** Compile, run under SATB with the elision policy (failing on any
    marking violation), and collect the dynamic counters. *)

val rows : ?inline_limit:int -> unit -> row list
val render : row list -> string
val print : unit -> unit
