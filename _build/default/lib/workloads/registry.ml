(** All workloads, in the paper's Table 1 order. *)

let table1 : Spec.t list =
  [ Jess.t; Db.t; Javac_like.t; Mtrt.t; Jack.t; Jbb.t ]

let micro : Spec.t list = [ Micro.expand; Micro.two_names ]

(** Benchmarks the paper omitted for having "very little heap or pointer
    manipulation" (§4.1); kept as sanity workloads. *)
let omitted : Spec.t list = [ Compress.t; Mpegaudio.t ]

let all : Spec.t list = table1 @ micro @ omitted

let find (name : string) : Spec.t option =
  List.find_opt (fun (w : Spec.t) -> String.equal w.name name) all
