(** mpegaudio lookalike — the second SPECjvm98 program the paper omitted
    for having "very little heap or pointer manipulation" (§4.1).

    Like {!Compress} it exists as a sanity workload, but unlike the other
    workloads it is written in {e mini-Java} and compiled through the
    {!Jsrc} frontend; its jasm [src] is the pretty-printed compiler
    output, which also exercises the frontend → printer → parser
    round-trip every time the workload is loaded. *)

let java_src =
  {|
// mpegaudio: subband-synthesis-style integer DSP over int arrays
class Main {
  static int checksum;

  static int window(int[] samples, int[] coeffs, int phase) {
    int acc = 0;
    for (int i = 0; i < samples.length; i = i + 1) {
      int k = (i * 7 + phase) % coeffs.length;
      acc = acc + samples[i] * coeffs[k];
    }
    return acc;
  }

  static void frame(int n) {
    int[] samples = new int[32];
    int[] coeffs = new int[16];
    for (int i = 0; i < 32; i = i + 1) { samples[i] = (i * i) % 97; }
    for (int j = 0; j < 16; j = j + 1) { coeffs[j] = 16 - j; }
    int acc = 0;
    for (int p = 0; p < n; p = p + 1) {
      acc = acc + window(samples, coeffs, p);
    }
    Main.checksum = Main.checksum + acc % 1000;
  }

  static void main() {
    for (int f = 0; f < 10; f = f + 1) { frame(6); }
  }
}
|}

let src =
  Jir.Pp.program_to_string
    (Jir.Program.program (Jsrc.Compile.compile_source java_src))

let t : Spec.t =
  {
    Spec.name = "mpegaudio";
    description =
      "omitted-by-the-paper benchmark (mini-Java source): int DSP, no barriers";
    paper_row = None;
    src;
    entry = Spec.main_entry;
  }
