(** Micro-programs lifted straight from the paper's running examples. *)

val expand_src : string
(** §3.1's array-doubling example. *)

val two_names_src : string
(** §2.4's two-names-per-allocation-site example. *)

val expand : Spec.t
val two_names : Spec.t
