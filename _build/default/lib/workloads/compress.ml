(** compress lookalike — one of the two SPECjvm98 programs the paper
    {e omitted} ("two benchmarks with very little heap or pointer
    manipulation", §4.1).

    It exists here as a sanity workload: almost all of its work is integer
    arithmetic over int arrays (an LZW-style hash loop), so it executes
    almost no reference-store barriers, and the analysis has almost
    nothing to do — exactly why the paper left it out of Table 1. *)

let src =
  {|
; compress: int-array LZW-style hashing; nearly barrier-free
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref dict      ; the single object-array (rarely touched)
  static ref seed

  ; one compression block: hash-chase over int arrays
  method void block (int) locals 5
    iconst 64
    inewarray
    astore 1
    iconst 64
    inewarray
    astore 2
    iconst 0
    istore 3
  loop:
    iload 3
    iload 0
    if_icmpge fin
    ; h = (h * 31 + i) mod 64
    iload 3
    iconst 31
    imul
    iload 3
    iadd
    iconst 64
    irem
    istore 4
    aload 1
    iload 4
    aload 2
    iload 4
    iaload
    iconst 1
    iadd
    iastore
    aload 2
    iload 4
    iload 3
    iastore
    iinc 3 1
    goto loop
  fin:
    return
  end

  method void main () locals 1
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    iconst 4
    anewarray Obj
    putstatic Main.dict
    ; one reference store in the whole run
    getstatic Main.dict
    iconst 0
    getstatic Main.seed
    aastore
    iconst 12
    istore 0
  blocks:
    iload 0
    ifle fin
    iconst 200
    invoke Main.block
    iinc 0 -1
    goto blocks
  fin:
    return
  end
end
|}

let t : Spec.t =
  {
    Spec.name = "compress";
    description =
      "omitted-by-the-paper benchmark: int-array work, almost no barriers";
    paper_row = None;
    src;
    entry = Spec.main_entry;
  }
