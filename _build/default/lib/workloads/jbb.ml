(** jbb lookalike — SPECjbb2000-style warehouse transaction processing.

    New orders are mostly constructed-then-filed (eliminable constructor
    stores) but a substantial fraction is filed into the district before
    initialization (dynamically pre-null, kept).  Order completion removes
    the oldest order from the district's order array by shifting every
    later element down one slot — the paper's §4.3 "move-down" delete
    idiom whose stores never overwrite null — and then appends a
    replacement into the vacated last slot (pre-null append).  District
    bookkeeping fields are repeatedly overwritten.  A small payment-cache
    loop exercises the null-or-same idiom (§4.3 reports 4%% of jbb's
    barriers are of this class).

    Paper row: 297.8M barriers, 25.6% eliminated, 53.4% potentially
    pre-null, 69/31 field/array, field 37.0% / array 0.0% eliminated. *)

let pad n = String.concat "\n" (List.init n (fun _ -> "    iinc 2 1"))

let src =
  Printf.sprintf
    {|
; jbb: warehouse transactions with delete-by-shift order queues
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Order
  field ref customer
  field ref item
  field ref entry
  method void <init> (ref ref ref) locals 3 ctor
    aload 0
    aload 1
    putfield Order.customer
    return
  end
  method void <initEmpty> (ref) locals 1 ctor
    return
  end
end

class District
  field ref lastOrder
  field ref cache
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref orders     ; district order queue (fixed 9 slots)
  static ref district
  static ref seed

  ; construct an order fully, then update district bookkeeping
  method void newOrderGood () locals 1
    new Order
    dup
    getstatic Main.seed
    getstatic Main.seed
    invoke Order.<init>
    astore 0
    aload 0
    getstatic Main.seed
    invoke Main.bindItem
    getstatic Main.district
    aload 0
    putfield District.lastOrder  ; escaped district: kept
    return
  end

  ; file the order in the queue before initializing it
  method void newOrderEager (int) locals 2
    new Order
    dup
    invoke Order.<initEmpty>
    astore 1
    getstatic Main.orders
    iload 0
    aload 1
    aastore                      ; file into escaped queue
    aload 1
    getstatic Main.seed
    putfield Order.customer      ; post-escape: kept, pre-null
    aload 1
    getstatic Main.seed
    putfield Order.item          ; post-escape: kept, pre-null
    return
  end

  ; delete the oldest order with the §4.3 move-down idiom: clear slot 0
  ; first (this store keeps its barrier and logs the deleted order), then
  ; shift every later element down one slot, then append a replacement at
  ; the top.  With the move-down extension enabled, every shift store is
  ; removable; without it they all keep their (never-pre-null) barriers.
  method void completeOldest () locals 2
    getstatic Main.orders
    iconst 0
    aconst_null
    aastore                      ; logs the deleted order; starts the chain
    iconst 0
    istore 0
  shift:
    iload 0
    getstatic Main.orders
    arraylength
    iconst 1
    isub
    if_icmpge append
    getstatic Main.orders
    iload 0
    getstatic Main.orders
    iload 0
    iconst 1
    iadd
    aaload
    aastore                      ; move-down copy: E8-elidable
    iinc 0 1
    goto shift
  append:
    new Order
    dup
    getstatic Main.seed
    getstatic Main.seed
    invoke Order.<init>
    astore 1
    aload 1
    getstatic Main.seed
    invoke Main.bindItem
    getstatic Main.orders
    getstatic Main.orders
    arraylength
    iconst 1
    isub
    aload 1
    aastore                      ; append: pre-value non-null, kept
    aload 1
    getstatic Main.seed
    putfield Order.entry         ; post-append init: kept, pre-null
    return
  end

  ; sets an order's item; sized (~30 instructions) so it inlines at
  ; limit 50 but not at 25
  method void bindItem (ref ref) locals 3
    aload 0
    aload 1
    putfield Order.item
    iconst 0
    istore 2
%s
    return
  end

  ; payment cache: t = d.cache; if (t == null) t = fallback; d.cache = t
  method void payments (int) locals 4
    new District
    dup
    invoke District.<init>
    astore 1
    iconst 0
    istore 2
  loop:
    iload 2
    iload 0
    if_icmpge fin
    aload 1
    getfield District.cache
    astore 3
    aload 3
    ifnonnull store
    getstatic Main.seed
    astore 3
  store:
    aload 1
    aload 3
    putfield District.cache      ; null-or-same site
    iinc 2 1
    goto loop
  fin:
    return
  end

  method void main () locals 2
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    new District
    dup
    invoke District.<init>
    putstatic Main.district
    iconst 9
    anewarray Order
    putstatic Main.orders
    ; fill the queue (appends over null)
    iconst 0
    istore 0
  fill:
    iload 0
    iconst 9
    if_icmpge txs
    getstatic Main.orders
    iload 0
    new Order
    dup
    getstatic Main.seed
    getstatic Main.seed
    invoke Order.<init>
    astore 1
    aload 1
    getstatic Main.seed
    invoke Main.bindItem
    aload 1
    aastore
    iinc 0 1
    goto fill
  txs:
    ; transaction mix: per round, good orders, eager orders, bookkeeping
    ; updates, and one completion
    iconst 0
    istore 0
  round:
    iload 0
    iconst 31
    if_icmpge pay
    ; three fully-constructed orders
    invoke Main.newOrderGood
    invoke Main.newOrderGood
    invoke Main.newOrderGood
    ; four filed-before-init orders (slots 0..3 of the queue)
    iconst 0
    invoke Main.newOrderEager
    iconst 1
    invoke Main.newOrderEager
    iconst 2
    invoke Main.newOrderEager
    iconst 3
    invoke Main.newOrderEager
    ; bookkeeping overwrites
    getstatic Main.district
    getstatic Main.orders
    iconst 0
    aaload
    putfield District.lastOrder
    getstatic Main.district
    getstatic Main.orders
    iconst 1
    aaload
    putfield District.lastOrder
    ; one completion (8 shift stores + clear + append)
    invoke Main.completeOldest
    ; business logic: tax/total computation (no heap stores) — keeps the
    ; store density realistic so barrier overhead lands near the paper's
    ; ~2.5 percent of end-to-end cost
    iconst 0
    istore 1
  calc:
    iload 1
    iconst 100
    if_icmpge calcdone
    iload 1
    iconst 3
    imul
    iconst 7
    irem
    pop
    iinc 1 1
    goto calc
  calcdone:
    iinc 0 1
    goto round
  pay:
    iconst 40
    invoke Main.payments
    return
  end
end
|}
    (pad 22)

let t : Spec.t =
  {
    Spec.name = "jbb";
    description = "warehouse transactions: delete-by-shift order queues";
    paper_row =
      Some
        {
          p_total_millions = 297.8;
          p_elim_pct = 25.6;
          p_pot_pre_null_pct = 53.4;
          p_field_pct = 69;
          p_field_elim_pct = 37.0;
          p_array_elim_pct = 0.0;
        };
    src;
    entry = Spec.main_entry;
  }
