(** A workload: a jasm program with an entry point and the paper's
    benchmark it stands in for.

    The six main workloads reproduce the {e store-population shape} of the
    SPECjvm98 / SPECjbb2000 programs measured in the paper's Table 1: the
    ratio of field to array reference stores, the fraction of each that is
    an initializing store to a still-thread-local object (provably
    eliminable), the fraction that escapes before initialization
    (dynamically pre-null but not provable), and the overwrite idioms
    (sorting swaps, delete-by-shift loops) the paper's §4.3 discusses. *)

type t = {
  name : string;
  description : string;
  paper_row : paper_row option;
      (** the corresponding Table 1 row from the paper, for side-by-side
          reporting *)
  src : string;
  entry : Jir.Types.method_ref;
}

(** Paper's Table 1 (dynamic) values. *)
and paper_row = {
  p_total_millions : float;
  p_elim_pct : float;
  p_pot_pre_null_pct : float;
  p_field_pct : int;  (** field share of field/array split *)
  p_field_elim_pct : float;
  p_array_elim_pct : float;
}

let main_entry = { Jir.Types.mclass = "Main"; mname = "main" }

let parse (w : t) : Jir.Program.t = Jir.Parser.parse_linked w.src
