(** mtrt lookalike — a multi-threaded ray tracer's store population.

    Two worker threads each build thread-local scene fragments (vector
    objects with constructor field initialization — eliminable) and fill
    thread-local ray buffers in order (eliminable array stores), then
    publish results into a shared image buffer (escaped array, write-once:
    dynamically pre-null but kept) and update shared bookkeeping fields
    (overwrites, kept).  Nearly every store in this program overwrites
    null dynamically, matching the paper's 91.6%% potentially-pre-null
    bound.

    Paper row: 3.0M barriers, 61.9% eliminated, 91.6% potentially
    pre-null, 41/59 field/array, field 72.0% / array 54.7% eliminated. *)

let pad l n = String.concat "\n" (List.init n (fun _ -> "    iinc " ^ string_of_int l ^ " 1"))

let src =
  Printf.sprintf
    {|
; mtrt: two render workers with thread-local scenes + shared image
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Vec
  field ref x
  field ref y
  field ref z
  method void <init> (ref ref) locals 2 ctor
    aload 0
    aload 1
    putfield Vec.x
    aload 0
    aload 1
    putfield Vec.y
    return
  end
end

class Shared
  field ref last      ; repeatedly overwritten bookkeeping slot
  field ref brdf0     ; write-once fields initialized after escape
  field ref brdf1
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Worker
  ; sets a vector's z component; sized (~40 instructions) so it inlines
  ; at limit 50 but not at 25
  method void bindZ (ref ref) locals 3
    aload 0
    aload 1
    putfield Vec.z
    iconst 0
    istore 2
%s
    return
  end

  ; in-order refill of a ray buffer from the scene; sized (~75
  ; instructions) so it inlines at limit 100 but not at 50
  method void refill (ref ref) locals 4
    iconst 0
    istore 2
  fill:
    iload 2
    aload 0
    arraylength
    if_icmpge fin
    aload 0
    iload 2
    aload 1
    iload 2
    iconst 32
    irem
    aaload
    aastore              ; eliminable once inlined into the worker
    iinc 2 1
    goto fill
  fin:
    iconst 0
    istore 3
%s
    return
  end

  ; run (shared: ref, buffer: ref, base: int)
  method void run (ref ref int) locals 8
    ; build 32 thread-local vectors into a local scene array, in order
    iconst 32
    anewarray Vec
    astore 3
    iconst 0
    istore 4
  build:
    iload 4
    iconst 32
    if_icmpge rays
    new Vec
    dup
    getstatic Main.seed
    invoke Vec.<init>
    astore 5
    ; z component via a mid-sized helper (inlines at limit 50+)
    aload 5
    getstatic Main.seed
    invoke Worker.bindZ
    aload 3
    iload 4
    aload 5
    aastore              ; thread-local in-order init: eliminable
    iinc 4 1
    goto build
  rays:
    ; two rounds of ray-buffer refills (fresh local arrays, in order)
    iconst 0
    istore 4
  round:
    iload 4
    iconst 2
    if_icmpge publish
    iconst 36
    anewarray Vec
    astore 6
    ; the refill loop lives in a helper, so the fresh buffer only stays
    ; provably thread-local at the 100-instruction inline level
    aload 6
    aload 3
    invoke Worker.refill
    iinc 4 1
    goto round
  publish:
    ; write-once results into the shared image buffer slice [base..base+86)
    iconst 0
    istore 4
  pub:
    iload 4
    iconst 86
    if_icmpge book
    aload 1
    iload 2
    iload 4
    iadd
    aload 3
    iload 4
    iconst 32
    irem
    aaload
    aastore              ; escaped buffer: kept, dynamically pre-null
    iinc 4 1
    goto pub
  book:
    ; shared bookkeeping: overwrite shared.last repeatedly
    iconst 0
    istore 4
  bk:
    iload 4
    iconst 28
    if_icmpge once
    aload 0
    aload 3
    iload 4
    iconst 32
    irem
    aaload
    putfield Shared.last ; escaped object overwrite: kept
    iinc 4 1
    goto bk
  once:
    ; escape-then-init: publish a material object, then set its fields
    iconst 0
    istore 4
  mat:
    iload 4
    iconst 5
    if_icmpge fin
    new Shared
    dup
    invoke Shared.<init>
    astore 5
    aload 0
    aload 5
    putfield Shared.last ; publish (escape)
    aload 5
    getstatic Main.seed
    putfield Shared.brdf0  ; post-escape init: kept, pre-null
    aload 5
    getstatic Main.seed
    putfield Shared.brdf1  ; post-escape init: kept, pre-null
    iinc 4 1
    goto mat
  fin:
    return
  end
end

class Main
  static ref seed
  static ref image
  static ref shared

  method void main () locals 1
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    iconst 172
    anewarray Vec
    putstatic Main.image
    new Shared
    dup
    invoke Shared.<init>
    putstatic Main.shared
    ; two workers render disjoint slices of the shared image
    getstatic Main.shared
    getstatic Main.image
    iconst 0
    spawn Worker.run
    getstatic Main.shared
    getstatic Main.image
    iconst 86
    spawn Worker.run
    return
  end
end
|}
    (pad 2 33) (pad 3 57)

let t : Spec.t =
  {
    Spec.name = "mtrt";
    description = "multi-threaded ray tracer: thread-local scenes, shared image";
    paper_row =
      Some
        {
          p_total_millions = 3.0;
          p_elim_pct = 61.9;
          p_pot_pre_null_pct = 91.6;
          p_field_pct = 41;
          p_field_elim_pct = 72.0;
          p_array_elim_pct = 54.7;
        };
    src;
    entry = Spec.main_entry;
  }
