(** jess lookalike — an expert-system shell's store population.

    Rule firing allocates short-lived fact objects whose fields are
    initialized immediately (eliminable), then inserts each fact into the
    global working memory and agenda arrays (array stores to escaped
    arrays: barrier kept).  Working memory is reused across generations, so
    the first generation's array stores overwrite null (potentially
    pre-null) while later generations overwrite old facts.

    Paper row: 7.9M barriers, 50.5% eliminated, 75.0% potentially
    pre-null, 51/49 field/array, field 99.7% / array 0.0% eliminated. *)

let pad n = String.concat "\n" (List.init n (fun _ -> "    iinc 2 1"))

let src =
  Printf.sprintf
    {|
; jess: rule-engine working-memory churn
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Fact
  field ref slot0
  field ref slot1
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref wm        ; working memory (reused across generations)
  static ref derived1  ; derived-fact tables, each slot written once
  static ref derived2
  static ref seed

  ; one generation of rule firing: allocate a fact per working-memory
  ; slot and insert it (the same site overwrites old facts in later
  ; generations, so it is not even potentially pre-null)
  method void generation () locals 2
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.wm
    arraylength
    if_icmpge fin
    new Fact
    dup
    invoke Fact.<init>
    astore 1
    ; first slot is set right at the allocation site: eliminable once the
    ; (trivial) constructor is inlined
    aload 1
    getstatic Main.seed
    putfield Fact.slot0
    ; second slot is set by a mid-sized helper: eliminable only once the
    ; helper itself is inlined
    aload 1
    getstatic Main.seed
    invoke Main.bindSlot1
    getstatic Main.wm
    iload 0
    aload 1
    aastore              ; escaped + churned: kept, not pre-null
    iinc 0 1
    goto loop
  fin:
    return
  end

  ; rule-network binding: sets the second slot; sized (~35 instructions)
  ; so it inlines at limit 50 but not at 25
  method void bindSlot1 (ref ref) locals 3
    aload 0
    aload 1
    putfield Fact.slot1
    iconst 0
    istore 2
%s
    return
  end

  ; derive: record each working-memory fact in a write-once table
  ; (escaped array: kept, but dynamically always pre-null)
  method void derive1 () locals 1
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.derived1
    arraylength
    if_icmpge fin
    getstatic Main.derived1
    iload 0
    getstatic Main.wm
    iload 0
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end

  method void derive2 () locals 1
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.derived2
    arraylength
    if_icmpge fin
    getstatic Main.derived2
    iload 0
    getstatic Main.wm
    iload 0
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end

  method void main () locals 1
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    iconst 96
    anewarray Fact
    putstatic Main.wm
    iconst 96
    anewarray Fact
    putstatic Main.derived1
    iconst 96
    anewarray Fact
    putstatic Main.derived2
    iconst 2
    istore 0
  gens:
    iload 0
    ifle derive
    invoke Main.generation
    iinc 0 -1
    goto gens
  derive:
    invoke Main.derive1
    invoke Main.derive2
    return
  end
end
|}
    (pad 30)

let t : Spec.t =
  {
    Spec.name = "jess";
    description = "expert-system shell: fact allocation + working-memory churn";
    paper_row =
      Some
        {
          p_total_millions = 7.9;
          p_elim_pct = 50.5;
          p_pot_pre_null_pct = 75.0;
          p_field_pct = 51;
          p_field_elim_pct = 99.7;
          p_array_elim_pct = 0.0;
        };
    src;
    entry = Spec.main_entry;
  }
