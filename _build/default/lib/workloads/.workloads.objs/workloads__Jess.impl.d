lib/workloads/jess.ml: List Printf Spec String
