lib/workloads/mpegaudio.ml: Jir Jsrc Spec
