lib/workloads/compress.ml: Spec
