lib/workloads/micro.ml: Spec
