lib/workloads/compress.mli: Spec
