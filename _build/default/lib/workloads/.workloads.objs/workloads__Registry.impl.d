lib/workloads/registry.ml: Compress Db Jack Javac_like Jbb Jess List Micro Mpegaudio Mtrt Spec String
