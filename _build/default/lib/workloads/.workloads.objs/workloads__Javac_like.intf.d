lib/workloads/javac_like.mli: Spec
