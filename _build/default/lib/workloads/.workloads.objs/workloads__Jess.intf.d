lib/workloads/jess.mli: Spec
