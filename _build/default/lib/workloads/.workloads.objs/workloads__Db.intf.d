lib/workloads/db.mli: Spec
