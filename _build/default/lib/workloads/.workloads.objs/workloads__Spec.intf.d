lib/workloads/spec.mli: Jir
