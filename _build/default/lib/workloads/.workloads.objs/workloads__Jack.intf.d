lib/workloads/jack.mli: Spec
