lib/workloads/jack.ml: List Printf Spec String
