lib/workloads/micro.mli: Spec
