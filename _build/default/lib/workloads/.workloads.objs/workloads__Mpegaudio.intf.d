lib/workloads/mpegaudio.mli: Spec
