lib/workloads/spec.ml: Jir
