lib/workloads/jbb.mli: Spec
