lib/workloads/mtrt.mli: Spec
