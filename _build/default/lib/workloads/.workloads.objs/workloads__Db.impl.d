lib/workloads/db.ml: List Printf Spec String
