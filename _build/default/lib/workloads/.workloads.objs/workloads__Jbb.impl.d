lib/workloads/jbb.ml: List Printf Spec String
