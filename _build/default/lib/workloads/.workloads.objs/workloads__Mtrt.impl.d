lib/workloads/mtrt.ml: List Printf Spec String
