lib/workloads/javac_like.ml: List Printf Spec String
