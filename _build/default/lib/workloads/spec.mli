(** A workload: a jasm program, its entry point, and the paper's Table 1
    row it stands in for (the six main workloads reproduce each
    benchmark's store-population shape — see DESIGN.md §2). *)

type t = {
  name : string;
  description : string;
  paper_row : paper_row option;
  src : string;
  entry : Jir.Types.method_ref;
}

(** The paper's Table 1 (dynamic) values. *)
and paper_row = {
  p_total_millions : float;
  p_elim_pct : float;
  p_pot_pre_null_pct : float;
  p_field_pct : int;
  p_field_elim_pct : float;
  p_array_elim_pct : float;
}

val main_entry : Jir.Types.method_ref
val parse : t -> Jir.Program.t
