(** javac lookalike — a compiler front end's store population.

    AST nodes are built two ways: most of the "good" paths construct a
    node and initialize all fields before attaching it to the (escaped)
    node table (eliminable); some paths attach the node first and
    initialize afterwards (dynamically pre-null but unprovable).  Repeated
    attribution passes overwrite the [typ] field of escaped nodes
    (non-pre-null, kept).  A scope-resolution loop exercises the §4.3
    memoization idiom that only the null-or-same extension can remove, and
    a local-buffer copy loop provides the small fraction of eliminable
    array stores.

    Paper row: 19.9M barriers, 32.8% eliminated, 38.5% potentially
    pre-null, 92/8 field/array, field 33.9% / array 20.5% eliminated. *)

let pad n = String.concat "\n" (List.init n (fun _ -> "    iinc 2 1"))

let src =
  Printf.sprintf
    {|
; javac: AST construction, attribution passes, scope cache
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Node
  field ref left
  field ref right
  field ref sym
  field ref typ
  method void <init> (ref ref) locals 2 ctor
    aload 0
    aload 1
    putfield Node.left
    aload 0
    aload 1
    putfield Node.right
    return
  end
  method void <initEmpty> (ref) locals 1 ctor
    return
  end
end

class Scope
  field ref cache
  method void <init> (ref ref) locals 2 ctor
    aload 0
    aload 1
    putfield Scope.cache
    return
  end
end

class Main
  static ref nodes      ; global node table
  static int cursor
  static ref seed

  ; build a node fully, then attach it (all field inits eliminable)
  method void buildGood () locals 1
    new Node
    dup
    getstatic Main.seed
    invoke Node.<init>
    astore 0
    ; symbol/type annotation via a larger helper: eliminable only at the
    ; 100-instruction inline level
    aload 0
    getstatic Main.seed
    invoke Main.annotate
    getstatic Main.nodes
    getstatic Main.cursor
    aload 0
    aastore               ; append to escaped table (pre-null dynamically)
    getstatic Main.cursor
    iconst 1
    iadd
    putstatic Main.cursor
    return
  end

  ; attach the node first, initialize afterwards: escapes before init,
  ; so the four stores stay potentially pre-null but unprovable
  method void buildEager () locals 1
    new Node
    dup
    invoke Node.<initEmpty>
    astore 0
    getstatic Main.nodes
    getstatic Main.cursor
    aload 0
    aastore
    getstatic Main.cursor
    iconst 1
    iadd
    putstatic Main.cursor
    aload 0
    getstatic Main.seed
    putfield Node.left
    aload 0
    getstatic Main.seed
    putfield Node.right
    aload 0
    getstatic Main.seed
    putfield Node.sym
    aload 0
    getstatic Main.seed
    putfield Node.typ
    return
  end

  ; annotate a node's symbol and type; sized (~70 instructions) so it
  ; inlines at limit 100 but not at 50
  method void annotate (ref ref) locals 3
    aload 0
    aload 1
    putfield Node.sym
    aload 0
    aload 1
    putfield Node.typ
    iconst 0
    istore 2
%s
    return
  end

  ; one attribution pass: overwrite typ on every attached node
  method void attribute () locals 2
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.cursor
    if_icmpge fin
    getstatic Main.nodes
    iload 0
    aaload
    astore 1
    aload 1
    getstatic Main.seed
    putfield Node.typ     ; overwrite of non-null: barrier kept
    iinc 0 1
    goto loop
  fin:
    return
  end

  ; scope resolution with a memoization cache (§4.3 null-or-same idiom):
  ; t = scope.cache; if (t == null) t = fallback; scope.cache = t
  method void resolve (int) locals 4
    new Scope
    dup
    getstatic Main.seed
    invoke Scope.<init>
    astore 1
    iconst 0
    istore 2
  loop:
    iload 2
    iload 0
    if_icmpge fin
    aload 1
    getfield Scope.cache
    astore 3
    aload 3
    ifnonnull store
    getstatic Main.seed
    astore 3
  store:
    aload 1
    aload 3
    putfield Scope.cache  ; writes back the cached value or fills a null
                          ; cache: removable only by null-or-same
    iinc 2 1
    goto loop
  fin:
    return
  end

  ; copy a slice of the node table into a fresh local buffer; the copy
  ; loop lives in a helper, so the buffer only stays provably
  ; thread-local when the helper is inlined (limit 100)
  method void localBuffer () locals 1
    iconst 12
    anewarray Node
    astore 0
    aload 0
    invoke Main.copyInto
    return
  end

  ; in-order copy into the given buffer; sized (~60 instructions) so it
  ; inlines at limit 100 but not at 50
  method void copyInto (ref) locals 3
    iconst 0
    istore 1
  loop:
    iload 1
    aload 0
    arraylength
    if_icmpge fin
    aload 0
    iload 1
    getstatic Main.nodes
    iload 1
    aaload
    aastore               ; eliminable once inlined into localBuffer
    iinc 1 1
    goto loop
  fin:
    iconst 0
    istore 2
%s
    return
  end

  method void main () locals 1
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    iconst 64
    anewarray Node
    putstatic Main.nodes
    iconst 0
    putstatic Main.cursor
    ; 45 good builds
    iconst 45
    istore 0
  good:
    iload 0
    ifle eager
    invoke Main.buildGood
    iinc 0 -1
    goto good
  eager:
    iconst 6
    istore 0
  eloop:
    iload 0
    ifle attr
    invoke Main.buildEager
    iinc 0 -1
    goto eloop
  attr:
    iconst 5
    istore 0
  aloop:
    iload 0
    ifle buf
    invoke Main.attribute
    iinc 0 -1
    goto aloop
  buf:
    invoke Main.localBuffer
    iconst 100
    invoke Main.resolve
    return
  end
end
|}
    (pad 60) (pad 45)

let t : Spec.t =
  {
    Spec.name = "javac";
    description = "compiler: AST build, attribution passes, scope cache";
    paper_row =
      Some
        {
          p_total_millions = 19.9;
          p_elim_pct = 32.8;
          p_pot_pre_null_pct = 38.5;
          p_field_pct = 92;
          p_field_elim_pct = 33.9;
          p_array_elim_pct = 20.5;
        };
    src;
    entry = Spec.main_entry;
  }
