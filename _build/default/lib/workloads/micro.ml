(** Micro-programs lifted straight from the paper's running examples. *)

(** §3.1's motivating example: [expand] doubles an array, copying the old
    elements in order.  Every store in the copy loop is initializing. *)
let expand_src =
  {|
; paper §3.1: public static T[] expand(T[] ta)
class T
  field ref payload
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref result

  method ref expand (ref) locals 3
    aload 0
    arraylength
    iconst 2
    imul
    anewarray T
    astore 1
    iconst 0
    istore 2
  loop:
    iload 2
    aload 0
    arraylength
    if_icmpge fin
    aload 1
    iload 2
    aload 0
    iload 2
    aaload
    aastore              ; initializing: eliminable by the array analysis
    iinc 2 1
    goto loop
  fin:
    aload 1
    areturn
  end

  method void main () locals 2
    iconst 8
    anewarray T
    astore 0
    iconst 0
    istore 1
  fill:
    iload 1
    iconst 8
    if_icmpge go
    aload 0
    iload 1
    new T
    dup
    invoke T.<init>
    aastore
    iinc 1 1
    goto fill
  go:
    aload 0
    invoke Main.expand
    putstatic Main.result
    return
  end
end
|}

(** §2.4's two-names-per-site example: W1 writes a field of the most
    recently allocated object (strong update, eliminable); W2 writes a
    field of an object saved from a {e previous} iteration (summarized by
    [R_id/B], weak update, kept). *)
let two_names_src =
  {|
; paper §2.4: precision from two abstract names per allocation site
class T
  field ref f1
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref sink
  static int p1
  static int p2

  method void loop () locals 3
    aconst_null
    astore 1            ; saved = null
    iconst 8
    istore 0
  head:
    iload 0
    ifle fin
    new T
    dup
    invoke T.<init>
    astore 2            ; t = new T()
    getstatic Main.p2
    ifeq skipw1
    aload 2
    getstatic Main.sink
    putfield T.f1       ; W1: most recent allocation, eliminable
  skipw1:
    aload 1
    ifnull skipw2
    aload 1
    getstatic Main.sink
    putfield T.f1       ; W2: older object (R_id/B), kept
  skipw2:
    aload 2
    astore 1            ; saved = t
    iinc 0 -1
    goto head
  fin:
    return
  end

  method void main () locals 0
    new T
    dup
    invoke T.<init>
    putstatic Main.sink
    iconst 1
    putstatic Main.p2
    invoke Main.loop
    return
  end
end
|}

let expand : Spec.t =
  {
    Spec.name = "micro-expand";
    description = "paper §3.1 array-doubling example";
    paper_row = None;
    src = expand_src;
    entry = Spec.main_entry;
  }

let two_names : Spec.t =
  {
    Spec.name = "micro-two-names";
    description = "paper §2.4 two-names-per-allocation-site example";
    paper_row = None;
    src = two_names_src;
    entry = Spec.main_entry;
  }
