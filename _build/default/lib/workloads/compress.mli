(** See the module implementation header for the workload's design and
    the Table 1 row it reproduces. *)

val src : string
(** jasm source. *)

val t : Spec.t
