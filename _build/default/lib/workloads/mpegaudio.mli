(** See the module implementation header: the second omitted SPECjvm98
    benchmark, written in mini-Java and compiled through {!Jsrc}. *)

val java_src : string
val src : string
val t : Spec.t
