(** All bundled workloads. *)

val table1 : Spec.t list
(** The six benchmarks of the paper's Table 1, in its order. *)

val micro : Spec.t list
(** The paper's §2.4 and §3.1 running examples. *)

val omitted : Spec.t list
(** Benchmarks the paper omitted for having "very little heap or pointer
    manipulation" (§4.1); kept as sanity workloads. *)

val all : Spec.t list
val find : string -> Spec.t option
