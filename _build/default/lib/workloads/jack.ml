(** jack lookalike — a parser generator's store population.

    Token objects are allocated with constructor initialization
    (eliminable); a fraction of tokens is registered in the global token
    stream before being annotated (post-escape stores: dynamically
    pre-null, kept).  The parse table is filled through a hashed index
    ([i*7 mod 64]) so the stores are not in-order and the null-range
    analysis keeps every array barrier, matching the paper's 0.0%% array
    elimination for jack.  A token-pushback slot exercises the §4.3
    null-or-same idiom.

    Paper row: 10.7M barriers, 41.0% eliminated, 54.0% potentially
    pre-null, 74/26 field/array, field 55.5% / array 0.0% eliminated. *)

let pad n = String.concat "\n" (List.init n (fun _ -> "    iinc 2 1"))

let src =
  Printf.sprintf
    {|
; jack: token allocation, hashed parse-table fills, pushback slot
class Obj
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Token
  field ref text
  field ref kind
  method void <init> (ref ref ref) locals 3 ctor
    aload 0
    aload 1
    putfield Token.text
    return
  end
  method void <initEmpty> (ref) locals 1 ctor
    return
  end
end

class Stream
  field ref pushback
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref tokens     ; global token stream
  static int cursor
  static ref table      ; parse table, filled via hashed indices
  static ref seed

  ; lex a batch of n tokens, fully initialized before registration
  method void lexGood (int) locals 3
    iconst 0
    istore 1
  loop:
    iload 1
    iload 0
    if_icmpge fin
    new Token
    dup
    getstatic Main.seed
    getstatic Main.seed
    invoke Token.<init>
    astore 2
    ; token kind via a larger classification helper (inlines at 100+)
    aload 2
    getstatic Main.seed
    invoke Main.classify
    ; register every fourth token in the global stream
    iload 1
    iconst 4
    irem
    ifne skip
    getstatic Main.tokens
    getstatic Main.cursor
    aload 2
    aastore
    getstatic Main.cursor
    iconst 1
    iadd
    putstatic Main.cursor
  skip:
    iinc 1 1
    goto loop
  fin:
    return
  end

  ; classify a token (sets its kind); sized (~80 instructions) so it
  ; inlines at limit 100 but not at 50
  method void classify (ref ref) locals 3
    aload 0
    aload 1
    putfield Token.kind
    iconst 0
    istore 2
%s
    return
  end

  ; register-then-annotate: token escapes before its fields are set
  method void lexEager (int) locals 3
    iconst 0
    istore 1
  loop:
    iload 1
    iload 0
    if_icmpge fin
    new Token
    dup
    invoke Token.<initEmpty>
    astore 2
    getstatic Main.tokens
    getstatic Main.cursor
    aload 2
    aastore
    getstatic Main.cursor
    iconst 1
    iadd
    putstatic Main.cursor
    aload 2
    getstatic Main.seed
    putfield Token.text   ; post-escape: kept, dynamically pre-null
    aload 2
    getstatic Main.seed
    putfield Token.kind   ; post-escape: kept, dynamically pre-null
    iinc 1 1
    goto loop
  fin:
    return
  end

  ; one sweep of hashed parse-table fills: table[(i*7) mod len] = tok
  method void tableSweep () locals 2
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.table
    arraylength
    if_icmpge fin
    getstatic Main.table
    iload 0
    iconst 7
    imul
    getstatic Main.table
    arraylength
    irem
    getstatic Main.tokens
    iconst 0
    aaload
    aastore               ; hashed index: not provably in the null range
    iinc 0 1
    goto loop
  fin:
    return
  end

  ; re-kind pass over registered tokens (overwrites, kept)
  method void rekind (int) locals 3
    iconst 0
    istore 1
  pass:
    iload 1
    iload 0
    if_icmpge fin
    iconst 0
    istore 2
  loop:
    iload 2
    getstatic Main.cursor
    if_icmpge nextpass
    getstatic Main.tokens
    iload 2
    aaload
    getstatic Main.seed
    putfield Token.kind   ; overwrite of non-null: kept
    iinc 2 1
    goto loop
  nextpass:
    iinc 1 1
    goto pass
  fin:
    return
  end

  ; pushback slot: t = s.pushback; if (t == null) t = fresh; s.pushback = t
  method void pushback (int) locals 4
    new Stream
    dup
    invoke Stream.<init>
    astore 1
    aload 1
    getstatic Main.seed
    putfield Stream.pushback   ; thread-local init: eliminable
    iconst 0
    istore 2
  loop:
    iload 2
    iload 0
    if_icmpge fin
    aload 1
    getfield Stream.pushback
    astore 3
    aload 3
    ifnonnull store
    getstatic Main.seed
    astore 3
  store:
    aload 1
    aload 3
    putfield Stream.pushback   ; null-or-same site
    iinc 2 1
    goto loop
  fin:
    return
  end

  method void main () locals 1
    new Obj
    dup
    invoke Obj.<init>
    putstatic Main.seed
    iconst 256
    anewarray Token
    putstatic Main.tokens
    iconst 64
    anewarray Token
    putstatic Main.table
    iconst 0
    putstatic Main.cursor
    ; seed tokens[0] so table sweeps have a value to store
    getstatic Main.tokens
    iconst 0
    new Token
    dup
    getstatic Main.seed
    getstatic Main.seed
    invoke Token.<init>
    aastore
    iconst 220
    invoke Main.lexGood
    iconst 45
    invoke Main.lexEager
    iconst 3
    istore 0
  sweeps:
    iload 0
    ifle rk
    invoke Main.tableSweep
    iinc 0 -1
    goto sweeps
  rk:
    iconst 2
    invoke Main.rekind
    iconst 150
    invoke Main.pushback
    return
  end
end
|}
    (pad 70)

let t : Spec.t =
  {
    Spec.name = "jack";
    description = "parser generator: tokens, hashed parse tables, pushback";
    paper_row =
      Some
        {
          p_total_millions = 10.7;
          p_elim_pct = 41.0;
          p_pot_pre_null_pct = 54.0;
          p_field_pct = 74;
          p_field_elim_pct = 55.5;
          p_array_elim_pct = 0.0;
        };
    src;
    entry = Spec.main_entry;
  }
