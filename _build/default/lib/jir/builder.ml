(** Programmatic construction of methods and classes with symbolic labels.

    Typical use:
    {[
      let m =
        Builder.(
          meth "expand" ~params:[ R ] ~ret:(Some R) ~locals:4 (fun b ->
              emit b (Aload 0);
              emit b Arraylength;
              ...
              label b "loop";
              ...
              emit b (Goto "loop")))
    ]}
    Labels are strings while building; {!finish} resolves them to
    instruction indices and records them for faithful pretty-printing. *)

open Types

type t = {
  name : method_name;
  params : ty list;
  ret : ty option;
  is_constructor : bool;
  mutable locals : int;
  mutable rev_code : string instr list;  (** reversed *)
  mutable count : int;
  label_tbl : (string, int) Hashtbl.t;
  mutable rev_handlers : string handler list;
}

exception Build_error of string

let build_errorf fmt = Fmt.kstr (fun s -> raise (Build_error s)) fmt

let create ~name ~params ?ret ?(ctor = false) ~locals () =
  if locals < List.length params then
    build_errorf "method %s: %d locals < %d params" name locals
      (List.length params);
  {
    name;
    params;
    ret;
    is_constructor = ctor;
    locals;
    rev_code = [];
    count = 0;
    label_tbl = Hashtbl.create 8;
    rev_handlers = [];
  }

(** Append one instruction (branch targets are label names). *)
let emit b (i : string instr) =
  b.rev_code <- i :: b.rev_code;
  b.count <- b.count + 1

let emit_all b is = List.iter (emit b) is

(** Define [name] at the current position. *)
let label b name =
  if Hashtbl.mem b.label_tbl name then
    build_errorf "method %s: duplicate label %s" b.name name;
  Hashtbl.replace b.label_tbl name b.count

(** Register an exception handler over the region between labels
    [from_lbl] (inclusive) and [to_lbl] (exclusive), jumping to
    [target_lbl]. *)
let handler b ~from_lbl ~to_lbl ~target_lbl kind =
  b.rev_handlers <-
    { from_pc = from_lbl; to_pc = to_lbl; target = target_lbl; kind }
    :: b.rev_handlers

(** Current instruction count (useful to compute label-free offsets). *)
let here b = b.count

let grow_locals b n = if n > b.locals then b.locals <- n

let finish b : meth =
  let resolve l =
    match Hashtbl.find_opt b.label_tbl l with
    | Some pc -> pc
    | None -> build_errorf "method %s: undefined label %s" b.name l
  in
  let code =
    Array.of_list (List.rev_map (map_label resolve) b.rev_code)
  in
  let handlers =
    List.rev_map
      (fun h ->
        {
          from_pc = resolve h.from_pc;
          to_pc = resolve h.to_pc;
          target = resolve h.target;
          kind = h.kind;
        })
      b.rev_handlers
  in
  let labels =
    Hashtbl.fold (fun name pc acc -> (pc, name) :: acc) b.label_tbl []
    |> List.sort compare
  in
  {
    mname = b.name;
    params = b.params;
    ret = b.ret;
    is_constructor = b.is_constructor;
    max_locals = b.locals;
    code;
    handlers;
    labels;
  }

(** [meth name ~params ?ret ?ctor ~locals f] builds a whole method in one
    call: [f] receives the builder and emits the body. *)
let meth name ~params ?ret ?(ctor = false) ~locals f : meth =
  let b = create ~name ~params ?ret ~ctor ~locals () in
  f b;
  finish b

(** Convenience constructors for classes and programs. *)

let field_decl name ty = { fd_name = name; fd_ty = ty }

let cls ?(fields = []) ?(statics = []) ?(methods = []) cname : cls =
  { cname; fields; statics; methods }

let program classes : program = { classes }
