(** Class-table access: efficient lookup of classes, fields and methods, and
    structural well-formedness checks that do not require dataflow (those
    live in {!Verifier}). *)

open Types

type t = {
  program : program;
  class_tbl : (class_name, cls) Hashtbl.t;
  method_tbl : (class_name * method_name, meth) Hashtbl.t;
  field_tbl : (class_name * field_name, field_decl) Hashtbl.t;
  static_tbl : (class_name * field_name, field_decl) Hashtbl.t;
}

exception Link_error of string

let link_errorf fmt = Fmt.kstr (fun s -> raise (Link_error s)) fmt

(** [of_program p] indexes [p].  Raises {!Link_error} on duplicate class,
    field or method names. *)
let of_program (program : program) : t =
  let class_tbl = Hashtbl.create 16 in
  let method_tbl = Hashtbl.create 64 in
  let field_tbl = Hashtbl.create 64 in
  let static_tbl = Hashtbl.create 16 in
  let add_class (c : cls) =
    if Hashtbl.mem class_tbl c.cname then
      link_errorf "duplicate class %s" c.cname;
    Hashtbl.replace class_tbl c.cname c;
    let add_field tbl what (fd : field_decl) =
      let key = (c.cname, fd.fd_name) in
      if Hashtbl.mem tbl key then
        link_errorf "duplicate %s field %s.%s" what c.cname fd.fd_name;
      Hashtbl.replace tbl key fd
    in
    List.iter (add_field field_tbl "instance") c.fields;
    List.iter (add_field static_tbl "static") c.statics;
    let add_method (m : meth) =
      let key = (c.cname, m.mname) in
      if Hashtbl.mem method_tbl key then
        link_errorf "duplicate method %s.%s" c.cname m.mname;
      Hashtbl.replace method_tbl key m
    in
    List.iter add_method c.methods
  in
  List.iter add_class program.classes;
  { program; class_tbl; method_tbl; field_tbl; static_tbl }

let program t = t.program
let classes t = t.program.classes

let find_class t name : cls option = Hashtbl.find_opt t.class_tbl name

let get_class t name : cls =
  match find_class t name with
  | Some c -> c
  | None -> link_errorf "unknown class %s" name

let find_method t (mr : method_ref) : meth option =
  Hashtbl.find_opt t.method_tbl (mr.mclass, mr.mname)

let get_method t (mr : method_ref) : meth =
  match find_method t mr with
  | Some m -> m
  | None -> link_errorf "unknown method %a" pp_method_ref mr

let find_field t (fr : field_ref) : field_decl option =
  Hashtbl.find_opt t.field_tbl (fr.fclass, fr.fname)

let get_field t (fr : field_ref) : field_decl =
  match find_field t fr with
  | Some fd -> fd
  | None -> link_errorf "unknown field %a" pp_field_ref fr

let find_static t (fr : field_ref) : field_decl option =
  Hashtbl.find_opt t.static_tbl (fr.fclass, fr.fname)

let get_static t (fr : field_ref) : field_decl =
  match find_static t fr with
  | Some fd -> fd
  | None -> link_errorf "unknown static field %a" pp_field_ref fr

(** Type of the field a [Getfield]/[Putfield] refers to. *)
let field_ty t fr = (get_field t fr).fd_ty

let static_ty t fr = (get_static t fr).fd_ty

(** Index of an instance field within its class's field list; the runtime
    lays out object fields in declaration order. *)
let field_index t (fr : field_ref) : int =
  let c = get_class t fr.fclass in
  let rec find i = function
    | [] -> link_errorf "unknown field %a" pp_field_ref fr
    | fd :: rest ->
        if String.equal fd.fd_name fr.fname then i else find (i + 1) rest
  in
  find 0 c.fields

(** All (class, method) pairs of the program, in declaration order. *)
let all_methods t : (cls * meth) list =
  List.concat_map
    (fun c -> List.map (fun m -> (c, m)) c.methods)
    t.program.classes

(** All static reference fields, used as GC roots. *)
let all_static_refs t : field_ref list =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun fd ->
          match fd.fd_ty with
          | R -> Some { fclass = c.cname; fname = fd.fd_name }
          | I -> None)
        c.statics)
    t.program.classes

(** Replace the body of one method, keeping everything else.  Used by the
    inliner to produce an expanded program. *)
let with_method t (mr : method_ref) (m : meth) : t =
  let update_class c =
    if not (String.equal c.cname mr.mclass) then c
    else
      {
        c with
        methods =
          List.map
            (fun m0 -> if String.equal m0.mname mr.mname then m else m0)
            c.methods;
      }
  in
  of_program { classes = List.map update_class t.program.classes }

(** Total instruction count over all methods — the "code size" metric before
    barrier-footprint weighting (see Figure 3 harness). *)
let total_instr_count t =
  List.fold_left
    (fun acc (_, m) -> acc + Array.length m.code)
    0 (all_methods t)
