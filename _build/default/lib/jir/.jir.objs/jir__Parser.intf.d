lib/jir/parser.mli: Fmt Program Types
