lib/jir/builder.mli: Types
