lib/jir/pp.mli: Fmt Hashtbl Types
