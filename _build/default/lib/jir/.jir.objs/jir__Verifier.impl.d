lib/jir/verifier.ml: Array Fmt List Pp Program Queue Types
