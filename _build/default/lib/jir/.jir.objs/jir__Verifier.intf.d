lib/jir/verifier.mli: Fmt Program Types
