lib/jir/lexer.ml: List String
