lib/jir/parser.ml: Buffer Builder Fmt Lexer List Printexc Program String Types
