lib/jir/cfg.ml: Array List Types
