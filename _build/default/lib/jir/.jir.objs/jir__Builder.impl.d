lib/jir/builder.ml: Array Fmt Hashtbl List Types
