lib/jir/lexer.mli:
