lib/jir/types.ml: Fmt String
