lib/jir/cfg.mli: Types
