lib/jir/pp.ml: Array Fmt Hashtbl List Printf String Types
