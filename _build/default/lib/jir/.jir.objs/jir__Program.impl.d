lib/jir/program.ml: Array Fmt Hashtbl List String Types
