lib/jir/program.mli: Types
