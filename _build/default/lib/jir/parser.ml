(** Recursive-descent parser for jasm assembly (see {!Pp} for the grammar).

    Parsing produces a {!Types.program} with label references resolved to
    instruction indices via {!Builder}. *)

open Types

exception Parse_error of { lineno : int; message : string }

let errf lineno fmt =
  Fmt.kstr (fun message -> raise (Parse_error { lineno; message })) fmt

let pp_error ppf = function
  | Parse_error { lineno; message } ->
      Fmt.pf ppf "jasm: line %d: %s" lineno message
  | e -> Fmt.pf ppf "%s" (Printexc.to_string e)

let ty_of_string lineno = function
  | "int" -> I
  | "ref" -> R
  | s -> errf lineno "expected type int or ref, got %S" s

let ret_of_string lineno = function
  | "void" -> None
  | "int" -> Some I
  | "ref" -> Some R
  | s -> errf lineno "expected return type void/int/ref, got %S" s

let int_of_token lineno s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> errf lineno "expected integer, got %S" s

(** Split ["C.f"] into a field or method reference. *)
let split_dotted lineno s =
  match String.index_opt s '.' with
  | Some i when i > 0 && i < String.length s - 1 ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | Some _ | None -> errf lineno "expected Class.member, got %S" s

let field_ref_of lineno s =
  let fclass, fname = split_dotted lineno s in
  { fclass; fname }

let method_ref_of lineno s =
  let mclass, mname = split_dotted lineno s in
  { mclass; mname }

(** Parse one instruction line into a label-parameterized instruction, or
    return [None] when the mnemonic is not an instruction (so the caller can
    try directives). *)
let instr_of_tokens lineno (tokens : string list) : string instr option =
  let one_int k = function
    | [ s ] -> Some (k (int_of_token lineno s))
    | args -> errf lineno "expected 1 integer argument, got %d" (List.length args)
  in
  let one_lbl k = function
    | [ l ] -> Some (k l)
    | args -> errf lineno "expected 1 label argument, got %d" (List.length args)
  in
  let one_fr k = function
    | [ s ] -> Some (k (field_ref_of lineno s))
    | args -> errf lineno "expected Class.field, got %d tokens" (List.length args)
  in
  let one_mr k = function
    | [ s ] -> Some (k (method_ref_of lineno s))
    | args -> errf lineno "expected Class.method, got %d tokens" (List.length args)
  in
  let nullary i = function
    | [] -> Some i
    | args -> errf lineno "unexpected arguments (%d)" (List.length args)
  in
  match tokens with
  | [] -> None
  | mnemonic :: args -> (
      let cond_branch prefix k =
        (* mnemonic = prefix ^ cond, e.g. "if_icmplt" *)
        let plen = String.length prefix in
        if
          String.length mnemonic > plen
          && String.sub mnemonic 0 plen = prefix
        then
          match
            cond_of_string
              (String.sub mnemonic plen (String.length mnemonic - plen))
          with
          | Some c -> one_lbl (fun l -> k (c, l)) args
          | None -> None
        else None
      in
      match mnemonic with
      | "iconst" -> one_int (fun n -> Iconst n) args
      | "aconst_null" -> nullary Aconst_null args
      | "iload" -> one_int (fun n -> Iload n) args
      | "istore" -> one_int (fun n -> Istore n) args
      | "aload" -> one_int (fun n -> Aload n) args
      | "astore" -> one_int (fun n -> Astore n) args
      | "iinc" -> (
          match args with
          | [ a; b ] ->
              Some (Iinc (int_of_token lineno a, int_of_token lineno b))
          | _ -> errf lineno "iinc expects 2 arguments")
      | "iadd" -> nullary (Ibin Add) args
      | "isub" -> nullary (Ibin Sub) args
      | "imul" -> nullary (Ibin Mul) args
      | "idiv" -> nullary (Ibin Div) args
      | "irem" -> nullary (Ibin Rem) args
      | "ineg" -> nullary Ineg args
      | "dup" -> nullary Dup args
      | "pop" -> nullary Pop args
      | "swap" -> nullary Swap args
      | "goto" -> one_lbl (fun l -> Goto l) args
      | "ifnull" -> one_lbl (fun l -> If_null l) args
      | "ifnonnull" -> one_lbl (fun l -> If_nonnull l) args
      | "if_acmpeq" -> one_lbl (fun l -> If_acmp (true, l)) args
      | "if_acmpne" -> one_lbl (fun l -> If_acmp (false, l)) args
      | "getstatic" -> one_fr (fun r -> Getstatic r) args
      | "putstatic" -> one_fr (fun r -> Putstatic r) args
      | "getfield" -> one_fr (fun r -> Getfield r) args
      | "putfield" -> one_fr (fun r -> Putfield r) args
      | "new" -> (
          match args with
          | [ c ] -> Some (New c)
          | _ -> errf lineno "new expects a class name")
      | "anewarray" -> (
          match args with
          | [ c ] -> Some (Newarray (Elem_ref c))
          | _ -> errf lineno "anewarray expects a class name")
      | "inewarray" -> nullary (Newarray Elem_int) args
      | "aaload" -> nullary Aaload args
      | "aastore" -> nullary Aastore args
      | "iaload" -> nullary Iaload args
      | "iastore" -> nullary Iastore args
      | "arraylength" -> nullary Arraylength args
      | "invoke" -> one_mr (fun r -> Invoke r) args
      | "spawn" -> one_mr (fun r -> Spawn r) args
      | "return" -> nullary Return args
      | "ireturn" -> nullary Ireturn args
      | "areturn" -> nullary Areturn args
      | _ -> (
          match cond_branch "if_icmp" (fun (c, l) -> If_icmp (c, l)) with
          | Some _ as r -> r
          | None -> cond_branch "if" (fun (c, l) -> If_i (c, l))))

let is_label_decl tok =
  String.length tok > 1 && tok.[String.length tok - 1] = ':'

let label_name tok = String.sub tok 0 (String.length tok - 1)

(** Parse the body of a method until [end]; returns the finished method and
    the remaining lines. *)
let parse_method_body lineno ~name ~params ~ret ~locals ~ctor lines =
  let b = Builder.create ~name ~params ?ret ~ctor ~locals () in
  let rec loop = function
    | [] -> errf lineno "method %s: missing end" name
    | ({ Lexer.lineno = ln; tokens } : Lexer.line) :: rest -> (
        match tokens with
        | [ "end" ] -> (Builder.finish b, rest)
        | [ tok ] when is_label_decl tok ->
            (try Builder.label b (label_name tok)
             with Builder.Build_error m -> errf ln "%s" m);
            loop rest
        | "catch" :: args -> (
            match args with
            | [ kind_s; from_lbl; to_lbl; target_lbl ] -> (
                match exn_kind_of_string kind_s with
                | Some kind ->
                    Builder.handler b ~from_lbl ~to_lbl ~target_lbl kind;
                    loop rest
                | None -> errf ln "unknown exception kind %S" kind_s)
            | _ -> errf ln "catch expects: kind from to handler")
        | _ -> (
            match instr_of_tokens ln tokens with
            | Some i ->
                Builder.emit b i;
                loop rest
            | None ->
                errf ln "unknown instruction %S" (String.concat " " tokens)))
  in
  try loop lines with Builder.Build_error m -> errf lineno "%s" m

(** Parse a method header line:
    [method <ret> <name> ( <tys> ) locals <n> [ctor]]. *)
let parse_method_header lineno args =
  (* args: ret name (tys...) locals n [ctor]; parens are separate tokens or
     attached — accept both ["("; "ref"; ")"] and ["(ref)"] forms by
     re-splitting on parens. *)
  let resplit tok =
    let buf = Buffer.create (String.length tok) in
    let out = ref [] in
    let flush () =
      if Buffer.length buf > 0 then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
    in
    String.iter
      (fun c ->
        match c with
        | '(' | ')' ->
            flush ();
            out := String.make 1 c :: !out
        | c -> Buffer.add_char buf c)
      tok;
    flush ();
    List.rev !out
  in
  match List.concat_map resplit args with
  | ret_s :: name :: "(" :: rest ->
      let rec take_params acc = function
        | ")" :: rest -> (List.rev acc, rest)
        | ty_s :: rest -> take_params (ty_of_string lineno ty_s :: acc) rest
        | [] -> errf lineno "method header: missing )"
      in
      let params, rest = take_params [] rest in
      let ret = ret_of_string lineno ret_s in
      let locals, ctor =
        match rest with
        | [ "locals"; n ] -> (int_of_token lineno n, false)
        | [ "locals"; n; "ctor" ] -> (int_of_token lineno n, true)
        | _ -> errf lineno "method header: expected 'locals <n> [ctor]'"
      in
      (name, params, ret, locals, ctor)
  | _ -> errf lineno "malformed method header"

(** Parse the members of a class until [end]. *)
let parse_class_body lineno cname lines =
  let rec loop fields statics methods = function
    | [] -> errf lineno "class %s: missing end" cname
    | ({ Lexer.lineno = ln; tokens } : Lexer.line) :: rest -> (
        match tokens with
        | [ "end" ] ->
            ( {
                cname;
                fields = List.rev fields;
                statics = List.rev statics;
                methods = List.rev methods;
              },
              rest )
        | [ "field"; ty_s; fname ] ->
            let fd = { fd_name = fname; fd_ty = ty_of_string ln ty_s } in
            loop (fd :: fields) statics methods rest
        | [ "static"; ty_s; fname ] ->
            let fd = { fd_name = fname; fd_ty = ty_of_string ln ty_s } in
            loop fields (fd :: statics) methods rest
        | "method" :: args ->
            let name, params, ret, locals, ctor =
              parse_method_header ln args
            in
            let m, rest =
              parse_method_body ln ~name ~params ~ret ~locals ~ctor rest
            in
            loop fields statics (m :: methods) rest
        | _ ->
            errf ln "unexpected line in class %s: %S" cname
              (String.concat " " tokens))
  in
  loop [] [] [] lines

let parse_program (src : string) : program =
  let rec loop classes = function
    | [] -> { classes = List.rev classes }
    | ({ Lexer.lineno = ln; tokens } : Lexer.line) :: rest -> (
        match tokens with
        | [ "class"; cname ] ->
            let c, rest = parse_class_body ln cname rest in
            loop (c :: classes) rest
        | _ ->
            errf ln "expected 'class <name>', got %S"
              (String.concat " " tokens))
  in
  loop [] (Lexer.tokenize src)

(** Parse and link in one step. *)
let parse_linked (src : string) : Program.t =
  Program.of_program (parse_program src)
