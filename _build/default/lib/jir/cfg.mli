(** Control-flow graphs over assembled methods: maximal basic blocks, the
    iteration unit of the paper's dataflow analysis (§2).  Handler edges
    are kept apart from normal edges because the state transfer differs
    (operand stack cleared). *)

type block = {
  id : int;
  start_pc : int;
  end_pc : int;  (** exclusive *)
  succs : int list;
  handler_succs : (int * Types.exn_kind) list;
}

type t = {
  meth : Types.meth;
  blocks : block array;
  block_of_pc : int array;
}

val instrs : t -> block -> int Types.instr array
val leaders : Types.meth -> bool array
val build : Types.meth -> t
val n_blocks : t -> int
val block : t -> int -> block

val reverse_postorder : t -> int list
(** Blocks reachable from entry, in a good order for forward dataflow. *)
