(** Class-table access: efficient lookup of classes, fields and methods,
    plus structural well-formedness checks (dataflow checks live in
    {!Verifier}). *)

open Types

type t

exception Link_error of string

val of_program : program -> t
(** Index a program.  Raises {!Link_error} on duplicate class, field or
    method names. *)

val program : t -> program
val classes : t -> cls list
val find_class : t -> class_name -> cls option
val get_class : t -> class_name -> cls
val find_method : t -> method_ref -> meth option
val get_method : t -> method_ref -> meth
val find_field : t -> field_ref -> field_decl option
val get_field : t -> field_ref -> field_decl
val find_static : t -> field_ref -> field_decl option
val get_static : t -> field_ref -> field_decl
val field_ty : t -> field_ref -> ty
val static_ty : t -> field_ref -> ty

val field_index : t -> field_ref -> int
(** Index of an instance field within its class's declaration order (the
    runtime's object layout). *)

val all_methods : t -> (cls * meth) list
val all_static_refs : t -> field_ref list

val with_method : t -> method_ref -> meth -> t
(** Replace one method's body, re-linking the program. *)

val total_instr_count : t -> int
(** Total instruction count over all methods. *)
