(** Line lexer for the jasm assembly syntax.

    jasm is line-oriented: each non-empty line is one directive,
    instruction, or label declaration.  The lexer strips comments ([;] or
    [#] to end of line) and splits each remaining line on whitespace,
    keeping the 1-based line number for error reporting. *)

type line = { lineno : int; tokens : string list }

let strip_comment s =
  let cut_at idx = String.sub s 0 idx in
  let len = String.length s in
  let rec find i =
    if i >= len then s
    else
      match s.[i] with
      | ';' | '#' -> cut_at i
      | _ -> find (i + 1)
  in
  find 0

let split_on_whitespace s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(** [tokenize src] returns one {!line} per non-blank, non-comment source
    line, in order. *)
let tokenize (src : string) : line list =
  let raw_lines = String.split_on_char '\n' src in
  let f (lineno, acc) raw =
    let tokens = split_on_whitespace (strip_comment raw) in
    let acc = if tokens = [] then acc else { lineno; tokens } :: acc in
    (lineno + 1, acc)
  in
  let _, rev = List.fold_left f (1, []) raw_lines in
  List.rev rev
