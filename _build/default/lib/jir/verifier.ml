(** Bytecode verification.

    A dataflow pass over each method checks stack discipline and types,
    mirroring the JVM verifier rules the paper's analysis depends on (§2.2,
    §2.3):

    - operand stacks have the same depth and types at every join point;
    - a freshly allocated object ([new C]) is an {e uninitialized} value
      that may only be duplicated, shuffled, stored/loaded through locals,
      and finally consumed as receiver of a constructor of [C]; only then do
      all its copies become ordinary references.  This is what justifies the
      analysis's constructor entry state (receiver unescaped, declared
      fields null);
    - field/method references resolve and are used at their declared types;
    - exception handlers start with an empty operand stack. *)

open Types

type error = {
  e_class : class_name;
  e_method : method_name;
  e_pc : int;
  e_msg : string;
}

let pp_error ppf e =
  Fmt.pf ppf "%s.%s@%d: %s" e.e_class e.e_method e.e_pc e.e_msg

exception Verify of string

let failf fmt = Fmt.kstr (fun s -> raise (Verify s)) fmt

(** Verification-time value types.  [VUninit pc] tracks the allocation site
    so that initializing one copy initializes them all. *)
type vty = VInt | VRef | VUninit of int

let pp_vty ppf = function
  | VInt -> Fmt.string ppf "int"
  | VRef -> Fmt.string ppf "ref"
  | VUninit pc -> Fmt.pf ppf "uninit@%d" pc

(** Local-variable slots additionally track "never written" and "merge
    conflict"; both are errors only when read. *)
type lty = LUnset | LConflict | LVal of vty

type state = { stack : vty list; locals : lty array }

let equal_vty a b =
  match a, b with
  | VInt, VInt | VRef, VRef -> true
  | VUninit p, VUninit q -> p = q
  | (VInt | VRef | VUninit _), _ -> false

let merge_vty a b =
  if equal_vty a b then a
  else failf "stack type mismatch: %a vs %a" pp_vty a pp_vty b

let merge_lty a b =
  match a, b with
  | LVal x, LVal y -> if equal_vty x y then a else LConflict
  | LUnset, _ | _, LUnset -> LConflict
  | LConflict, _ | _, LConflict -> LConflict

let merge_state (a : state) (b : state) : state =
  if List.length a.stack <> List.length b.stack then
    failf "stack depth mismatch at join: %d vs %d" (List.length a.stack)
      (List.length b.stack);
  {
    stack = List.map2 merge_vty a.stack b.stack;
    locals = Array.map2 merge_lty a.locals b.locals;
  }

let equal_lty a b =
  match a, b with
  | LUnset, LUnset | LConflict, LConflict -> true
  | LVal x, LVal y -> equal_vty x y
  | (LUnset | LConflict | LVal _), _ -> false

let equal_state a b =
  List.length a.stack = List.length b.stack
  && List.for_all2 equal_vty a.stack b.stack
  && Array.for_all2 equal_lty a.locals b.locals

let vty_of_ty = function I -> VInt | R -> VRef

(** Verify one method against the class table.  Raises {!Verify}. *)
let verify_method (prog : Program.t) (c : cls) (m : meth) : unit =
  let n = Array.length m.code in
  if n = 0 then failf "empty code";
  if m.max_locals < List.length m.params then
    failf "max_locals %d < %d params" m.max_locals (List.length m.params);
  let entry =
    let locals = Array.make m.max_locals LUnset in
    List.iteri (fun i ty -> locals.(i) <- LVal (vty_of_ty ty)) m.params;
    { stack = []; locals }
  in
  let states : state option array = Array.make n None in
  let work = Queue.create () in
  let post pc (s : state) =
    if pc < 0 || pc >= n then failf "branch target %d out of range" pc;
    let s' =
      match states.(pc) with None -> s | Some old -> merge_state old s
    in
    match states.(pc) with
    | Some old when equal_state old s' -> ()
    | Some _ | None ->
        states.(pc) <- Some s';
        Queue.add pc work
  in
  let pop = function
    | v :: stack -> (v, stack)
    | [] -> failf "stack underflow"
  in
  let pop_int stack =
    match pop stack with
    | VInt, rest -> rest
    | v, _ -> failf "expected int on stack, got %a" pp_vty v
  in
  let pop_ref stack =
    match pop stack with
    | VRef, rest -> rest
    | v, _ -> failf "expected initialized ref on stack, got %a" pp_vty v
  in
  let pop_ty ty stack =
    match ty with I -> pop_int stack | R -> pop_ref stack
  in
  let load locals i =
    if i < 0 || i >= Array.length locals then failf "local %d out of range" i;
    match locals.(i) with
    | LVal v -> v
    | LUnset -> failf "local %d read before write" i
    | LConflict -> failf "local %d has conflicting types at merge" i
  in
  let store locals i v =
    if i < 0 || i >= Array.length locals then failf "local %d out of range" i;
    let locals = Array.copy locals in
    locals.(i) <- LVal v;
    locals
  in
  (* Initializing a VUninit site: every copy in stack and locals becomes an
     ordinary reference. *)
  let initialize site (s : state) : state =
    let up = function VUninit p when p = site -> VRef | v -> v in
    {
      stack = List.map up s.stack;
      locals =
        Array.map (function LVal v -> LVal (up v) | l -> l) s.locals;
    }
  in
  let check_ret ty =
    match m.ret, ty with
    | None, None -> ()
    | Some I, Some I | Some R, Some R -> ()
    | _ ->
        failf "return type mismatch (method returns %s)"
          (Pp.string_of_ret m.ret)
  in
  let handler_covers pc h = pc >= h.from_pc && pc < h.to_pc in
  let step pc (s : state) : unit =
    (* Any instruction inside a handler range can transfer to the handler
       with an empty stack and the current locals. *)
    List.iter
      (fun h ->
        if handler_covers pc h then
          post h.target { stack = []; locals = s.locals })
      m.handlers;
    let fallthrough stack locals =
      if pc + 1 >= n then failf "control falls off the end of the code";
      post (pc + 1) { stack; locals }
    in
    match m.code.(pc) with
    | Iconst _ -> fallthrough (VInt :: s.stack) s.locals
    | Aconst_null -> fallthrough (VRef :: s.stack) s.locals
    | Iload i ->
        (match load s.locals i with
        | VInt -> ()
        | v -> failf "iload of non-int local %d (%a)" i pp_vty v);
        fallthrough (VInt :: s.stack) s.locals
    | Aload i -> (
        match load s.locals i with
        | VRef -> fallthrough (VRef :: s.stack) s.locals
        | VUninit p -> fallthrough (VUninit p :: s.stack) s.locals
        | VInt -> failf "aload of int local %d" i)
    | Istore i ->
        let stack = pop_int s.stack in
        fallthrough stack (store s.locals i VInt)
    | Astore i -> (
        match pop s.stack with
        | (VRef | VUninit _) as v, stack ->
            fallthrough stack (store s.locals i v)
        | VInt, _ -> failf "astore of int value")
    | Iinc (i, _) ->
        (match load s.locals i with
        | VInt -> ()
        | v -> failf "iinc of non-int local %d (%a)" i pp_vty v);
        fallthrough s.stack s.locals
    | Ibin _ ->
        let stack = pop_int (pop_int s.stack) in
        fallthrough (VInt :: stack) s.locals
    | Ineg ->
        let stack = pop_int s.stack in
        fallthrough (VInt :: stack) s.locals
    | Dup ->
        let v, _ = pop s.stack in
        fallthrough (v :: s.stack) s.locals
    | Pop ->
        let _, stack = pop s.stack in
        fallthrough stack s.locals
    | Swap ->
        let a, stack = pop s.stack in
        let b, stack = pop stack in
        fallthrough (b :: a :: stack) s.locals
    | Goto l -> post l s
    | If_i (_, l) ->
        let stack = pop_int s.stack in
        post l { s with stack };
        fallthrough stack s.locals
    | If_icmp (_, l) ->
        let stack = pop_int (pop_int s.stack) in
        post l { s with stack };
        fallthrough stack s.locals
    | If_null l | If_nonnull l ->
        let stack = pop_ref s.stack in
        post l { s with stack };
        fallthrough stack s.locals
    | If_acmp (_, l) ->
        let stack = pop_ref (pop_ref s.stack) in
        post l { s with stack };
        fallthrough stack s.locals
    | Getstatic fr ->
        let ty = Program.static_ty prog fr in
        fallthrough (vty_of_ty ty :: s.stack) s.locals
    | Putstatic fr ->
        let ty = Program.static_ty prog fr in
        let stack = pop_ty ty s.stack in
        fallthrough stack s.locals
    | Getfield fr ->
        let ty = Program.field_ty prog fr in
        let stack = pop_ref s.stack in
        fallthrough (vty_of_ty ty :: stack) s.locals
    | Putfield fr ->
        let ty = Program.field_ty prog fr in
        let stack = pop_ty ty s.stack in
        let stack = pop_ref stack in
        fallthrough stack s.locals
    | New cn ->
        ignore (Program.get_class prog cn);
        fallthrough (VUninit pc :: s.stack) s.locals
    | Newarray (Elem_ref cn) ->
        ignore (Program.get_class prog cn);
        let stack = pop_int s.stack in
        fallthrough (VRef :: stack) s.locals
    | Newarray Elem_int ->
        let stack = pop_int s.stack in
        fallthrough (VRef :: stack) s.locals
    | Aaload ->
        let stack = pop_ref (pop_int s.stack) in
        fallthrough (VRef :: stack) s.locals
    | Aastore ->
        let stack = pop_ref s.stack in
        let stack = pop_int stack in
        let stack = pop_ref stack in
        fallthrough stack s.locals
    | Iaload ->
        let stack = pop_ref (pop_int s.stack) in
        fallthrough (VInt :: stack) s.locals
    | Iastore ->
        let stack = pop_int s.stack in
        let stack = pop_int stack in
        let stack = pop_ref stack in
        fallthrough stack s.locals
    | Arraylength ->
        let stack = pop_ref s.stack in
        fallthrough (VInt :: stack) s.locals
    | Invoke mr ->
        let callee = Program.get_method prog mr in
        if callee.is_constructor then begin
          (* pop non-receiver args, then consume the uninitialized
             receiver and initialize all its copies *)
          (match callee.ret with
          | None -> ()
          | Some _ -> failf "constructor %a returns a value" pp_method_ref mr);
          let non_recv = List.tl callee.params in
          let stack =
            List.fold_left (fun st ty -> pop_ty ty st) s.stack
              (List.rev non_recv)
          in
          match pop stack with
          | VUninit site, stack ->
              let s' = initialize site { stack; locals = s.locals } in
              fallthrough s'.stack s'.locals
          | v, _ ->
              failf "constructor receiver must be uninitialized, got %a"
                pp_vty v
        end
        else begin
          let stack =
            List.fold_left (fun st ty -> pop_ty ty st) s.stack
              (List.rev callee.params)
          in
          match callee.ret with
          | None -> fallthrough stack s.locals
          | Some ty -> fallthrough (vty_of_ty ty :: stack) s.locals
        end
    | Spawn mr ->
        let callee = Program.get_method prog mr in
        if callee.is_constructor then failf "cannot spawn a constructor";
        (match callee.ret with
        | None -> ()
        | Some _ -> failf "spawned method must return void");
        let stack =
          List.fold_left (fun st ty -> pop_ty ty st) s.stack
            (List.rev callee.params)
        in
        fallthrough stack s.locals
    | Return ->
        check_ret None
    | Ireturn ->
        let _ = pop_int s.stack in
        check_ret (Some I)
    | Areturn ->
        let _ = pop_ref s.stack in
        check_ret (Some R)
  in
  (* constructors must belong to their class and take a ref receiver *)
  if m.is_constructor then begin
    match m.params with
    | R :: _ -> ()
    | _ -> failf "constructor must take a ref receiver as parameter 0"
  end;
  List.iter
    (fun h ->
      if h.from_pc < 0 || h.to_pc > n || h.from_pc >= h.to_pc then
        failf "handler range [%d,%d) invalid" h.from_pc h.to_pc;
      if h.target < 0 || h.target >= n then
        failf "handler target %d out of range" h.target)
    m.handlers;
  states.(0) <- Some entry;
  Queue.add 0 work;
  let current = ref 0 in
  (try
     while not (Queue.is_empty work) do
       let pc = Queue.pop work in
       current := pc;
       match states.(pc) with
       | Some s -> step pc s
       | None -> ()
     done
   with Verify msg -> failf "pc %d (%s): %s" !current
     (Pp.instr_to_string ~lbl:string_of_int m.code.(!current))
     msg);
  ignore c

(** Verify every method; collect all failures. *)
let verify_program (prog : Program.t) : (unit, error list) result =
  let errors =
    List.filter_map
      (fun (c, m) ->
        match verify_method prog c m with
        | () -> None
        | exception Verify msg ->
            Some { e_class = c.cname; e_method = m.mname; e_pc = -1; e_msg = msg }
        | exception Program.Link_error msg ->
            Some { e_class = c.cname; e_method = m.mname; e_pc = -1; e_msg = msg })
      (Program.all_methods prog)
  in
  match errors with [] -> Ok () | _ :: _ -> Error errors

let verify_exn prog =
  match verify_program prog with
  | Ok () -> ()
  | Error (e :: _) -> failf "%a" pp_error e
  | Error [] -> assert false
