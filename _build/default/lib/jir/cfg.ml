(** Control-flow graphs over assembled methods.

    Basic blocks are maximal single-entry straight-line instruction ranges;
    the analysis of the paper iterates over them (§2: "this pass analyzes
    basic blocks with modified start states, propagating changes to
    successor blocks, until a fixed point is reached").

    Exception-handler targets are block leaders; handler edges are kept
    separately from normal edges because the abstract state transfer differs
    (operand stack cleared). *)

open Types

type block = {
  id : int;
  start_pc : int;
  end_pc : int;  (** exclusive *)
  succs : int list;  (** successor block ids, normal edges *)
  handler_succs : (int * exn_kind) list;
      (** handler blocks reachable from inside this block *)
}

type t = {
  meth : meth;
  blocks : block array;
  block_of_pc : int array;  (** pc → id of containing block *)
}

let instrs t (b : block) =
  Array.sub t.meth.code b.start_pc (b.end_pc - b.start_pc)

(** Compute block leaders: entry, branch targets, instructions after
    branches/terminals, handler targets and handler range boundaries. *)
let leaders (m : meth) : bool array =
  let n = Array.length m.code in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc i ->
      List.iter (fun t -> if t < n then leader.(t) <- true) (targets i);
      let branches = targets i <> [] || is_terminal i in
      if branches && pc + 1 < n then leader.(pc + 1) <- true)
    m.code;
  List.iter
    (fun h ->
      if h.target < n then leader.(h.target) <- true;
      if h.from_pc < n then leader.(h.from_pc) <- true;
      if h.to_pc < n then leader.(h.to_pc) <- true)
    m.handlers;
  leader

let build (m : meth) : t =
  let n = Array.length m.code in
  let leader = leaders m in
  let block_of_pc = Array.make n (-1) in
  let starts = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then starts := pc :: !starts
  done;
  let starts = Array.of_list !starts in
  let nblocks = Array.length starts in
  let end_of i = if i + 1 < nblocks then starts.(i + 1) else n in
  Array.iteri
    (fun i start ->
      for pc = start to end_of i - 1 do
        block_of_pc.(pc) <- i
      done)
    starts;
  let block_at pc = block_of_pc.(pc) in
  let blocks =
    Array.init nblocks (fun i ->
        let start_pc = starts.(i) in
        let end_pc = end_of i in
        let last = m.code.(end_pc - 1) in
        let branch_succs = List.map block_at (targets last) in
        let fall =
          if is_terminal last || end_pc >= n then [] else [ block_at end_pc ]
        in
        let handler_succs =
          List.filter_map
            (fun h ->
              let overlaps = h.from_pc < end_pc && h.to_pc > start_pc in
              if overlaps then Some (block_at h.target, h.kind) else None)
            m.handlers
        in
        {
          id = i;
          start_pc;
          end_pc;
          succs = List.sort_uniq compare (branch_succs @ fall);
          handler_succs = List.sort_uniq compare handler_succs;
        })
  in
  { meth = m; blocks; block_of_pc }

let n_blocks t = Array.length t.blocks
let block t id = t.blocks.(id)

(** Blocks in reverse post order from the entry — a good iteration order
    for forward dataflow. *)
let reverse_postorder (t : t) : int list =
  let n = n_blocks t in
  let seen = Array.make n false in
  let order = ref [] in
  let rec dfs id =
    if not seen.(id) then begin
      seen.(id) <- true;
      let b = t.blocks.(id) in
      List.iter dfs b.succs;
      List.iter (fun (h, _) -> dfs h) b.handler_succs;
      order := id :: !order
    end
  in
  dfs 0;
  (* include blocks unreachable from entry at the end so every block gets
     processed at least never (they have no in-state and stay bottom) *)
  !order
