(** Core type definitions for the JIR bytecode intermediate representation.

    JIR is a faithful subset of JVM stack bytecode: a class table of classes
    with typed instance and static fields, and methods whose bodies are
    arrays of stack-machine instructions.  Branch targets are instruction
    indices once a method is assembled; the builder and the jasm assembler
    work with symbolic labels and resolve them (see {!Builder} and
    {!Parser}).

    All methods are "static-style": an instance method simply receives its
    receiver as parameter 0.  There is no virtual dispatch — the analysis of
    the reproduced paper treats every non-inlined call identically (all
    reference arguments escape), so dispatch precision is irrelevant. *)

type ty =
  | I  (** 32-bit-style integer (we use OCaml [int] underneath) *)
  | R  (** object or array reference *)

let equal_ty a b =
  match a, b with
  | I, I | R, R -> true
  | I, R | R, I -> false

let pp_ty ppf = function
  | I -> Fmt.string ppf "int"
  | R -> Fmt.string ppf "ref"

type class_name = string
type field_name = string
type method_name = string

(** A resolved reference to a field of a class (instance or static). *)
type field_ref = { fclass : class_name; fname : field_name }

let equal_field_ref a b =
  String.equal a.fclass b.fclass && String.equal a.fname b.fname

let compare_field_ref a b =
  match String.compare a.fclass b.fclass with
  | 0 -> String.compare a.fname b.fname
  | c -> c

let pp_field_ref ppf { fclass; fname } = Fmt.pf ppf "%s.%s" fclass fname

(** A resolved reference to a method of a class. *)
type method_ref = { mclass : class_name; mname : method_name }

let equal_method_ref a b =
  String.equal a.mclass b.mclass && String.equal a.mname b.mname

let pp_method_ref ppf { mclass; mname } = Fmt.pf ppf "%s.%s" mclass mname

(** Comparison conditions for integer branches. *)
type cond = Eq | Ne | Lt | Ge | Gt | Le

let string_of_cond = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let cond_of_string = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "ge" -> Some Ge
  | "gt" -> Some Gt
  | "le" -> Some Le
  | _ -> None

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

(** Binary integer operations. *)
type ibin = Add | Sub | Mul | Div | Rem

let string_of_ibin = function
  | Add -> "iadd"
  | Sub -> "isub"
  | Mul -> "imul"
  | Div -> "idiv"
  | Rem -> "irem"

(** Element type of an array allocation. *)
type elem_ty =
  | Elem_ref of class_name  (** object array; elements start null *)
  | Elem_int  (** int array; elements start 0 *)

(** Instructions, parameterized by the branch-target representation:
    ['lbl = string] while building or parsing, ['lbl = int] (instruction
    index) in an assembled {!meth}. *)
type 'lbl instr =
  | Iconst of int  (** push integer constant *)
  | Aconst_null  (** push null *)
  | Iload of int  (** push int local *)
  | Istore of int  (** pop int into local *)
  | Aload of int  (** push ref local *)
  | Astore of int  (** pop ref into local *)
  | Iinc of int * int  (** add constant to int local, no stack effect *)
  | Ibin of ibin  (** pop two ints, push result *)
  | Ineg  (** negate top int *)
  | Dup  (** duplicate top of stack *)
  | Pop  (** discard top of stack *)
  | Swap  (** exchange the two top stack slots *)
  | Goto of 'lbl
  | If_i of cond * 'lbl  (** pop int, branch if [int cond 0] *)
  | If_icmp of cond * 'lbl  (** pop two ints, branch on comparison *)
  | If_null of 'lbl  (** pop ref, branch if null *)
  | If_nonnull of 'lbl  (** pop ref, branch if non-null *)
  | If_acmp of bool * 'lbl  (** pop two refs, branch if equal (true) / not *)
  | Getstatic of field_ref
  | Putstatic of field_ref
  | Getfield of field_ref  (** pop receiver, push field value *)
  | Putfield of field_ref  (** pop value then receiver, store *)
  | New of class_name  (** allocate object, fields zeroed, push ref *)
  | Newarray of elem_ty  (** pop length, allocate array, push ref *)
  | Aaload  (** pop index, array; push element (ref array) *)
  | Aastore  (** pop value, index, array; store element (ref array) *)
  | Iaload  (** pop index, array; push element (int array) *)
  | Iastore  (** pop value, index, array; store element (int array) *)
  | Arraylength  (** pop array ref, push its length *)
  | Invoke of method_ref  (** call; args pushed left-to-right *)
  | Spawn of method_ref  (** start a new thread running the method *)
  | Return  (** return void *)
  | Ireturn  (** return top int *)
  | Areturn  (** return top ref *)

(** Kinds of runtime exception a handler can catch. *)
type exn_kind =
  | Bounds  (** array index out of bounds or negative array size *)
  | Null_deref
  | Arith  (** division / remainder by zero *)
  | Any

let string_of_exn_kind = function
  | Bounds -> "bounds"
  | Null_deref -> "null"
  | Arith -> "arith"
  | Any -> "any"

let exn_kind_of_string = function
  | "bounds" -> Some Bounds
  | "null" -> Some Null_deref
  | "arith" -> Some Arith
  | "any" -> Some Any
  | _ -> None

(** An exception handler covering instructions [from_pc, to_pc) and
    transferring control to [target] with an empty operand stack. *)
type 'lbl handler = {
  from_pc : 'lbl;
  to_pc : 'lbl;
  target : 'lbl;
  kind : exn_kind;
}

(** An assembled method. *)
type meth = {
  mname : method_name;
  params : ty list;  (** includes the receiver for instance methods *)
  ret : ty option;
  is_constructor : bool;
      (** constructors receive a fresh, unescaped receiver as param 0 whose
          declared fields are null on entry (paper §2.3) *)
  max_locals : int;
  code : int instr array;
  handlers : int handler list;
  labels : (int * string) list;
      (** pc → label name; only used to render jasm faithfully *)
}

type field_decl = { fd_name : field_name; fd_ty : ty }

type cls = {
  cname : class_name;
  fields : field_decl list;  (** instance fields *)
  statics : field_decl list;
  methods : meth list;
}

type program = { classes : cls list }

(** [map_label f i] rewrites the branch targets of [i] with [f]. *)
let map_label f = function
  | Goto l -> Goto (f l)
  | If_i (c, l) -> If_i (c, f l)
  | If_icmp (c, l) -> If_icmp (c, f l)
  | If_null l -> If_null (f l)
  | If_nonnull l -> If_nonnull (f l)
  | If_acmp (eq, l) -> If_acmp (eq, f l)
  | Iconst n -> Iconst n
  | Aconst_null -> Aconst_null
  | Iload n -> Iload n
  | Istore n -> Istore n
  | Aload n -> Aload n
  | Astore n -> Astore n
  | Iinc (n, d) -> Iinc (n, d)
  | Ibin op -> Ibin op
  | Ineg -> Ineg
  | Dup -> Dup
  | Pop -> Pop
  | Swap -> Swap
  | Getstatic fr -> Getstatic fr
  | Putstatic fr -> Putstatic fr
  | Getfield fr -> Getfield fr
  | Putfield fr -> Putfield fr
  | New c -> New c
  | Newarray e -> Newarray e
  | Aaload -> Aaload
  | Aastore -> Aastore
  | Iaload -> Iaload
  | Iastore -> Iastore
  | Arraylength -> Arraylength
  | Invoke mr -> Invoke mr
  | Spawn mr -> Spawn mr
  | Return -> Return
  | Ireturn -> Ireturn
  | Areturn -> Areturn

(** Branch targets of an instruction (empty for non-branches). *)
let targets = function
  | Goto l | If_i (_, l) | If_icmp (_, l) | If_null l | If_nonnull l
  | If_acmp (_, l) ->
      [ l ]
  | Iconst _ | Aconst_null | Iload _ | Istore _ | Aload _ | Astore _
  | Iinc _ | Ibin _ | Ineg | Dup | Pop | Swap | Getstatic _ | Putstatic _
  | Getfield _ | Putfield _ | New _ | Newarray _ | Aaload | Aastore | Iaload
  | Iastore | Arraylength | Invoke _ | Spawn _ | Return | Ireturn | Areturn
    ->
      []

(** Does control never fall through to the next instruction? *)
let is_terminal = function
  | Goto _ | Return | Ireturn | Areturn -> true
  | Iconst _ | Aconst_null | Iload _ | Istore _ | Aload _ | Astore _
  | Iinc _ | Ibin _ | Ineg | Dup | Pop | Swap | If_i _ | If_icmp _
  | If_null _ | If_nonnull _ | If_acmp _ | Getstatic _ | Putstatic _
  | Getfield _ | Putfield _ | New _ | Newarray _ | Aaload | Aastore
  | Iaload | Iastore | Arraylength | Invoke _ | Spawn _ ->
      false

(** Instructions that store a reference into the heap and therefore carry an
    SATB write barrier unless the analysis removes it. *)
type store_kind = Field_store | Array_store | Static_store

let store_kind_of_instr = function
  | Putfield _ -> Some Field_store
  | Aastore -> Some Array_store
  | Putstatic _ -> Some Static_store
  | _ -> None
