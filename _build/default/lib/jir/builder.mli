(** Programmatic construction of methods and classes with symbolic
    labels; {!finish} resolves labels to instruction indices. *)

open Types

type t

exception Build_error of string

val create :
  name:method_name ->
  params:ty list ->
  ?ret:ty ->
  ?ctor:bool ->
  locals:int ->
  unit ->
  t

val emit : t -> string instr -> unit
(** Append one instruction (branch targets are label names). *)

val emit_all : t -> string instr list -> unit

val label : t -> string -> unit
(** Define a label at the current position. *)

val handler :
  t -> from_lbl:string -> to_lbl:string -> target_lbl:string -> exn_kind -> unit
(** Register an exception handler over the region between two labels
    (from inclusive, to exclusive). *)

val here : t -> int
(** Current instruction count. *)

val grow_locals : t -> int -> unit
val finish : t -> meth

val meth :
  method_name ->
  params:ty list ->
  ?ret:ty ->
  ?ctor:bool ->
  locals:int ->
  (t -> unit) ->
  meth
(** Build a whole method in one call. *)

val field_decl : field_name -> ty -> field_decl
val cls :
  ?fields:field_decl list ->
  ?statics:field_decl list ->
  ?methods:meth list ->
  class_name ->
  cls
val program : cls list -> program
