(** Recursive-descent parser for jasm assembly (grammar sketch in {!Pp}).
    Label references are resolved to instruction indices via
    {!Builder}. *)

exception Parse_error of { lineno : int; message : string }

val pp_error : exn Fmt.t
(** Render a {!Parse_error} (or any other exception) for the user. *)

val instr_of_tokens : int -> string list -> string Types.instr option
(** Parse one instruction line; [None] when the mnemonic is not an
    instruction (the caller then tries directives).  The [int] is the
    line number for errors. *)

val parse_program : string -> Types.program
val parse_linked : string -> Program.t
