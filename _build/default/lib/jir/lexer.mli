(** Line lexer for the jasm assembly syntax: strips [;]/[#] comments and
    splits each non-blank line into whitespace-separated tokens, keeping
    1-based line numbers for error reporting. *)

type line = { lineno : int; tokens : string list }

val strip_comment : string -> string
val split_on_whitespace : string -> string list
val tokenize : string -> line list
