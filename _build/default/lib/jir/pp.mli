(** Pretty-printing of JIR programs in the jasm textual syntax.  Output
    parses back to an equal program ({!Parser.parse_program}); grammar
    sketch:

    {v
    class Node
      field ref next
      static int count
      method ref expand (ref) locals 4 [ctor]
        iconst 0
        istore 1
      loop:
        ...
        goto loop
        catch bounds try_start try_end handler
      end
    end
    v} *)

val string_of_ret : Types.ty option -> string
val string_of_ty : Types.ty -> string

val instr_to_string : lbl:(int -> string) -> int Types.instr -> string
(** Mnemonic and arguments, with branch targets rendered by [lbl]. *)

val label_map : Types.meth -> (int, string) Hashtbl.t
val pp_meth : Types.meth Fmt.t
val pp_cls : Types.cls Fmt.t
val pp_program : Types.program Fmt.t
val program_to_string : Types.program -> string
val meth_to_string : Types.meth -> string
