(** Bytecode verification: a dataflow pass over each method enforcing the
    JVM-style rules the analysis relies on (paper §2.2-2.3) — consistent
    operand stacks at joins, typed locals, resolution of field/method
    references, empty stacks at handler entries, and the new-object
    initialization discipline (a fresh [new C] may only be duplicated,
    shuffled, spilled, and finally consumed by a constructor of [C]). *)

type error = {
  e_class : Types.class_name;
  e_method : Types.method_name;
  e_pc : int;
  e_msg : string;
}

val pp_error : error Fmt.t

exception Verify of string

val verify_method : Program.t -> Types.cls -> Types.meth -> unit
(** Raises {!Verify} on the first violation. *)

val verify_program : Program.t -> (unit, error list) result
val verify_exn : Program.t -> unit
