(** Pretty-printing of JIR programs in the [jasm] textual assembly syntax.

    The output of {!pp_program} parses back with {!Parser.parse_program} to
    an equal program (round-trip property, tested with qcheck).  Grammar
    sketch (one construct per line, [;] and [#] start comments):

    {v
    class Node
      field ref next
      static int count
      method ref expand (ref) locals 4
        iconst 0
        istore 1
      loop:
        iload 1
        ...
        goto loop
        catch bounds try_start try_end handler
      end
    end
    v} *)

open Types

let string_of_ret = function
  | None -> "void"
  | Some I -> "int"
  | Some R -> "ref"

let string_of_ty = function I -> "int" | R -> "ref"

(** Mnemonic and arguments of one instruction, with targets shown through
    [lbl : int -> string]. *)
let instr_to_string ~lbl (i : int instr) : string =
  let fr (r : field_ref) = r.fclass ^ "." ^ r.fname in
  let mr (r : method_ref) = r.mclass ^ "." ^ r.mname in
  match i with
  | Iconst n -> Printf.sprintf "iconst %d" n
  | Aconst_null -> "aconst_null"
  | Iload n -> Printf.sprintf "iload %d" n
  | Istore n -> Printf.sprintf "istore %d" n
  | Aload n -> Printf.sprintf "aload %d" n
  | Astore n -> Printf.sprintf "astore %d" n
  | Iinc (n, d) -> Printf.sprintf "iinc %d %d" n d
  | Ibin op -> string_of_ibin op
  | Ineg -> "ineg"
  | Dup -> "dup"
  | Pop -> "pop"
  | Swap -> "swap"
  | Goto l -> "goto " ^ lbl l
  | If_i (c, l) -> Printf.sprintf "if%s %s" (string_of_cond c) (lbl l)
  | If_icmp (c, l) ->
      Printf.sprintf "if_icmp%s %s" (string_of_cond c) (lbl l)
  | If_null l -> "ifnull " ^ lbl l
  | If_nonnull l -> "ifnonnull " ^ lbl l
  | If_acmp (true, l) -> "if_acmpeq " ^ lbl l
  | If_acmp (false, l) -> "if_acmpne " ^ lbl l
  | Getstatic r -> "getstatic " ^ fr r
  | Putstatic r -> "putstatic " ^ fr r
  | Getfield r -> "getfield " ^ fr r
  | Putfield r -> "putfield " ^ fr r
  | New c -> "new " ^ c
  | Newarray (Elem_ref c) -> "anewarray " ^ c
  | Newarray Elem_int -> "inewarray"
  | Aaload -> "aaload"
  | Aastore -> "aastore"
  | Iaload -> "iaload"
  | Iastore -> "iastore"
  | Arraylength -> "arraylength"
  | Invoke r -> "invoke " ^ mr r
  | Spawn r -> "spawn " ^ mr r
  | Return -> "return"
  | Ireturn -> "ireturn"
  | Areturn -> "areturn"

(** Labels used by a method: declared label names where present, otherwise
    fresh [L<pc>] names for every branch target and handler boundary. *)
let label_map (m : meth) : (int, string) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (pc, name) -> Hashtbl.replace tbl pc name) m.labels;
  let ensure pc =
    if not (Hashtbl.mem tbl pc) then
      Hashtbl.replace tbl pc (Printf.sprintf "L%d" pc)
  in
  Array.iter (fun i -> List.iter ensure (targets i)) m.code;
  List.iter
    (fun h ->
      ensure h.from_pc;
      ensure h.to_pc;
      ensure h.target)
    m.handlers;
  tbl

let pp_meth ppf (m : meth) =
  let tbl = label_map m in
  let lbl pc =
    match Hashtbl.find_opt tbl pc with
    | Some s -> s
    | None -> Printf.sprintf "L%d" pc
  in
  let params =
    String.concat " " (List.map string_of_ty m.params)
  in
  Fmt.pf ppf "  method %s %s (%s) locals %d%s@\n" (string_of_ret m.ret)
    m.mname params m.max_locals
    (if m.is_constructor then " ctor" else "");
  Array.iteri
    (fun pc i ->
      (match Hashtbl.find_opt tbl pc with
      | Some name -> Fmt.pf ppf "  %s:@\n" name
      | None -> ());
      Fmt.pf ppf "    %s@\n" (instr_to_string ~lbl i))
    m.code;
  (* a label may sit just past the last instruction (e.g. handler end) *)
  (match Hashtbl.find_opt tbl (Array.length m.code) with
  | Some name -> Fmt.pf ppf "  %s:@\n" name
  | None -> ());
  List.iter
    (fun h ->
      Fmt.pf ppf "    catch %s %s %s %s@\n"
        (string_of_exn_kind h.kind)
        (lbl h.from_pc) (lbl h.to_pc) (lbl h.target))
    m.handlers;
  Fmt.pf ppf "  end@\n"

let pp_cls ppf (c : cls) =
  Fmt.pf ppf "class %s@\n" c.cname;
  List.iter
    (fun fd -> Fmt.pf ppf "  field %s %s@\n" (string_of_ty fd.fd_ty) fd.fd_name)
    c.fields;
  List.iter
    (fun fd ->
      Fmt.pf ppf "  static %s %s@\n" (string_of_ty fd.fd_ty) fd.fd_name)
    c.statics;
  List.iter (pp_meth ppf) c.methods;
  Fmt.pf ppf "end@\n"

let pp_program ppf (p : program) =
  List.iter (fun c -> Fmt.pf ppf "%a@\n" pp_cls c) p.classes

let program_to_string (p : program) = Fmt.str "%a" pp_program p
let meth_to_string (m : meth) = Fmt.str "%a" pp_meth m
