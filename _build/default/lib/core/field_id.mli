(** Identifiers of abstract heap locations within an object: a named
    field, or the pseudo-field [f_elems] collapsing all elements of an
    object array (paper §2.4). *)

type t =
  | F of Jir.Types.class_name * Jir.Types.field_name
  | Elems

val compare : t -> t -> int
val equal : t -> t -> bool
val of_field_ref : Jir.Types.field_ref -> t
val pp : t Fmt.t
