(** Method inlining (paper §2.4, §4.4).

    The analysis is performed after inlined method bodies are expanded: a
    non-inlined call conservatively escapes every reference argument, so
    without inlining even the constructor invocation that follows every
    allocation would make the fresh object escape immediately.  The
    "inline limit" is the maximum bytecode size of a callee that will be
    expanded — the parameter swept in the paper's Figure 2.

    Expansion is recursive (an inlined body's own calls are expanded
    against the same limit) with a depth bound and a per-method growth
    bound as safety valves; (mutually) recursive chains are cut by keeping
    the call, and callees with exception handlers are not inlined so that
    handler semantics stay exact. *)

open Jir.Types

type config = {
  limit : int;  (** max callee size, in instructions; 0 disables inlining *)
  max_depth : int;
  max_method_size : int;
}

let config ?(max_depth = 8) ?(max_method_size = 20_000) limit =
  { limit; max_depth; max_method_size }

type expanded = {
  out_code : int instr list;
  locals_used : int;
  pc_map : int array;  (** old pc (and old end) → new pc *)
}

let unchanged (code : int instr array) ~(first_free_local : int) : expanded =
  {
    out_code = Array.to_list code;
    locals_used = first_free_local;
    pc_map = Array.init (Array.length code + 1) Fun.id;
  }

(** Expand eligible calls inside [code].  Each inlined call site is
    replaced by stores of the arguments into fresh locals (popped in
    reverse), followed by the callee body with locals shifted and branches
    relocated; callee returns become jumps to just after the expansion
    (return values stay on the operand stack). *)
let rec expand_body (prog : Jir.Program.t) (conf : config)
    ~(stack : method_ref list) ~(depth : int) (code : int instr array)
    ~(first_free_local : int) : expanded =
  let n = Array.length code in
  let decide pc =
    match code.(pc) with
    | Invoke mr when conf.limit > 0 && depth < conf.max_depth -> (
        match Jir.Program.find_method prog mr with
        | Some callee
          when Array.length callee.code <= conf.limit
               && callee.handlers = []
               && not (List.exists (equal_method_ref mr) stack) ->
            Some (mr, callee)
        | Some _ | None -> None)
    | _ -> None
  in
  let plans = Array.init n decide in
  let free_local = ref first_free_local in
  let expansions : (int * int instr list) option array = Array.make n None in
  Array.iteri
    (fun pc plan ->
      match plan with
      | None -> ()
      | Some (mr, callee) ->
          let base = !free_local in
          (* expand the callee in its own frame coordinates; the uniform
             [base] shift below relocates the whole body, including any
             temporaries its own nested inlining introduced *)
          let inner =
            expand_body prog conf ~stack:(mr :: stack) ~depth:(depth + 1)
              callee.code ~first_free_local:callee.max_locals
          in
          free_local := max !free_local (base + inner.locals_used);
          expansions.(pc) <- Some (base, inner.out_code))
    plans;
  let size_of pc =
    match expansions.(pc), plans.(pc) with
    | Some (_, body), Some (_, callee) ->
        List.length callee.params + List.length body
    | _ -> 1
  in
  let pc_map = Array.make (n + 1) 0 in
  let acc = ref 0 in
  for pc = 0 to n - 1 do
    pc_map.(pc) <- !acc;
    acc := !acc + size_of pc
  done;
  pc_map.(n) <- !acc;
  if !acc > conf.max_method_size then unchanged code ~first_free_local
  else begin
    let out = ref [] in
    let emit i = out := i :: !out in
    Array.iteri
      (fun pc instr ->
        match expansions.(pc), plans.(pc) with
        | None, _ | _, None -> emit (map_label (fun l -> pc_map.(l)) instr)
        | Some (base, body), Some (_, callee) ->
            let param_tys = Array.of_list callee.params in
            let nargs = Array.length param_tys in
            for k = nargs - 1 downto 0 do
              match param_tys.(k) with
              | I -> emit (Istore (base + k))
              | R -> emit (Astore (base + k))
            done;
            let body_start = pc_map.(pc) + nargs in
            let after = pc_map.(pc + 1) in
            List.iter
              (fun bi ->
                let relocated =
                  match bi with
                  | Return | Ireturn | Areturn -> Goto after
                  | Iload i -> Iload (base + i)
                  | Istore i -> Istore (base + i)
                  | Aload i -> Aload (base + i)
                  | Astore i -> Astore (base + i)
                  | Iinc (i, d) -> Iinc (base + i, d)
                  | other -> map_label (fun l -> body_start + l) other
                in
                emit relocated)
              body)
      code;
    { out_code = List.rev !out; locals_used = !free_local; pc_map }
  end

(** Inline within one method, relocating handlers and labels. *)
let inline_method (prog : Jir.Program.t) (conf : config) (m : meth) : meth =
  if conf.limit <= 0 then m
  else
    let e =
      expand_body prog conf ~stack:[] ~depth:0 m.code
        ~first_free_local:m.max_locals
    in
    let new_pc pc = e.pc_map.(pc) in
    {
      m with
      code = Array.of_list e.out_code;
      max_locals = max m.max_locals e.locals_used;
      handlers =
        List.map
          (fun h ->
            {
              h with
              from_pc = new_pc h.from_pc;
              to_pc = new_pc h.to_pc;
              target = new_pc h.target;
            })
          m.handlers;
      labels = List.map (fun (pc, name) -> (new_pc pc, name)) m.labels;
    }

(** Inline every method of a program (bodies are expanded against the
    {e original} program, as a JIT compiling methods independently
    would). *)
let inline_program ?(conf = config 100) (prog : Jir.Program.t) :
    Jir.Program.t =
  let classes =
    List.map
      (fun c ->
        { c with methods = List.map (inline_method prog conf) c.methods })
      (Jir.Program.classes prog)
  in
  Jir.Program.of_program { classes }
