(** Abstract reference symbols ("Refs" in the paper, §2.1).

    The analysis names heap objects with a small, finite set of symbols:
    two per allocation site — [R_id/A] for the most recently allocated
    object and [R_id/B] summarizing all earlier ones — one per reference
    argument, and a single [Global] for everything allocated outside the
    analyzed method.  The A/B split is the precision the paper adds over
    traditional escape analysis: stores through the unique [R_id/A] admit
    strong update. *)

type t =
  | Global  (** the paper's [GlobalRef] *)
  | Arg of int  (** initial value of reference argument [i] *)
  | Alloc of { site : int; recent : bool }
      (** [recent = true] is [R_site/A]; [false] is [R_site/B] *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

val unique : in_ctor:bool -> t -> bool
(** Does the symbol denote exactly one concrete reference?  [R_id/A]
    always does; [Arg 0] does inside a constructor (§2.3).  Unique
    references admit strong update (§2.4). *)

val summary : int -> t
(** [summary site] is [R_site/B]. *)

val recent : int -> t
(** [recent site] is [R_site/A]. *)

val subst : from_sym:t -> to_sym:t -> t -> t
(** Pointwise substitution, used by the [newinstance] transfer (§2.4). *)

module Set : sig
  include Stdlib.Set.S with type elt = t

  val pp : t Fmt.t
end
