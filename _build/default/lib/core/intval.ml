(** Symbolic integer values ("IntVals", paper §3.2) and the
    stride-discovery merge procedure (paper Figure 1).

    An IntVal is either ⊤ or a linear combination
    [a·v + k₀·c₀ + … + kₙ·cₙ + b] with {e at most one} term in a {e
    variable unknown} [v] (a value that may differ between states — these
    are invented at control-flow merges to express values that vary with a
    common stride), zero or more terms in {e constant unknowns} [cᵢ]
    (opaque but fixed values, e.g. the length of an argument array), and an
    integer literal [b].

    Symbolic arithmetic is performed where it makes sense; anything else
    (products of two symbolic values, division, …) yields ⊤. *)

type t = Top | Lin of lin

and lin = {
  var : (int * int) option;  (** coefficient × variable-unknown id, coeff ≠ 0 *)
  consts : (int * int) list;
      (** coefficient × constant-unknown id; sorted by id, coeffs ≠ 0 *)
  base : int;
}

let top = Top
let zero = Lin { var = None; consts = []; base = 0 }
let const b = Lin { var = None; consts = []; base = b }

(** Fresh-unknown supply.  Constant unknowns are created per analyzed
    method (argument values, array-length parameters); variable unknowns
    are created during state merges. *)
module Gen = struct
  type t = { mutable next_const : int; mutable next_var : int }

  let create () = { next_const = 0; next_var = 0 }

  let fresh_const g =
    let id = g.next_const in
    g.next_const <- id + 1;
    id

  let fresh_var g =
    let id = g.next_var in
    g.next_var <- id + 1;
    id
end

let of_const_unknown id = Lin { var = None; consts = [ (1, id) ]; base = 0 }
let of_var_unknown id = Lin { var = Some (1, id); consts = []; base = 0 }

let is_top = function Top -> true | Lin _ -> false

(** The literal integer, if the value is a pure literal. *)
let to_literal = function
  | Lin { var = None; consts = []; base } -> Some base
  | Lin _ | Top -> None

let equal_lin (a : lin) (b : lin) =
  a.var = b.var && a.consts = b.consts && a.base = b.base

let equal a b =
  match a, b with
  | Top, Top -> true
  | Lin a, Lin b -> equal_lin a b
  | (Top | Lin _), _ -> false

let pp_term ppf (k, name) =
  if k = 1 then Fmt.string ppf name
  else if k = -1 then Fmt.pf ppf "-%s" name
  else Fmt.pf ppf "%d%s" k name

let pp ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Lin { var; consts; base } ->
      let terms =
        (match var with
        | Some (a, v) -> [ (a, Printf.sprintf "v%d" v) ]
        | None -> [])
        @ List.map (fun (k, c) -> (k, Printf.sprintf "c%d" c)) consts
      in
      if terms = [] then Fmt.int ppf base
      else begin
        Fmt.(list ~sep:(any "+") pp_term) ppf terms;
        if base <> 0 then Fmt.pf ppf "%+d" base
      end

(* ---- linear arithmetic ------------------------------------------------ *)

let merge_consts cs1 cs2 =
  let rec go cs1 cs2 =
    match cs1, cs2 with
    | [], cs | cs, [] -> cs
    | (k1, c1) :: r1, (k2, c2) :: r2 ->
        if c1 < c2 then (k1, c1) :: go r1 cs2
        else if c1 > c2 then (k2, c2) :: go cs1 r2
        else
          let k = k1 + k2 in
          if k = 0 then go r1 r2 else (k, c1) :: go r1 r2
  in
  go cs1 cs2

let add_lin (a : lin) (b : lin) : t =
  match a.var, b.var with
  | Some (ka, va), Some (kb, vb) when va = vb ->
      let k = ka + kb in
      let var = if k = 0 then None else Some (k, va) in
      Lin { var; consts = merge_consts a.consts b.consts; base = a.base + b.base }
  | Some _, Some _ -> Top  (* two distinct variable unknowns (§3.2) *)
  | (Some _ as v), None | None, (Some _ as v) ->
      Lin { var = v; consts = merge_consts a.consts b.consts; base = a.base + b.base }
  | None, None ->
      Lin { var = None; consts = merge_consts a.consts b.consts; base = a.base + b.base }

let add a b =
  match a, b with Lin a, Lin b -> add_lin a b | (Top | Lin _), _ -> Top

let scale k = function
  | Top -> if k = 0 then const 0 else Top
  | Lin { var; consts; base } ->
      if k = 0 then const 0
      else
        Lin
          {
            var = Option.map (fun (a, v) -> (k * a, v)) var;
            consts = List.map (fun (a, c) -> (k * a, c)) consts;
            base = k * base;
          }

let neg v = scale (-1) v
let sub a b = add a (neg b)
let add_const n v = add v (const n)

(** Multiplication: defined when either side is a pure literal. *)
let mul a b =
  match to_literal a, to_literal b with
  | Some ka, _ -> scale ka b
  | None, Some kb -> scale kb a
  | None, None -> Top

(** Binary op evaluation for the abstract interpreter. *)
let binop (op : Jir.Types.ibin) a b =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div | Rem -> (
      (* constant-fold pure literals; anything symbolic is ⊤ *)
      match to_literal a, to_literal b with
      | Some x, Some y when y <> 0 ->
          const (match op with Div -> x / y | _ -> x mod y)
      | _ -> Top)

(** [var_term i] — the variable-unknown term of [i], as (coeff, var id);
    [None] when absent or ⊤. *)
let var_term = function
  | Lin { var; _ } -> var
  | Top -> None

(** Is the value a pure integer literal? (paper's [int_const]) *)
let is_literal v = to_literal v <> None

(** [provably_ge a b] — is [a - b] a non-negative literal?  Symbolic terms
    must cancel exactly for the comparison to be provable. *)
let provably_ge a b =
  match to_literal (sub a b) with Some d -> d >= 0 | None -> false

let provably_gt a b =
  match to_literal (sub a b) with Some d -> d > 0 | None -> false

(** [subst_var i ~v ~by] replaces variable unknown [v] in [i] by the IntVal
    [by] (the paper's substitution application μ[i]). *)
let subst_var i ~v ~by =
  match i with
  | Top -> Top
  | Lin { var = Some (a, v') ; consts; base } when v' = v ->
      add (scale a by) (Lin { var = None; consts; base })
  | Lin _ -> i

(* ---- merging (paper Figure 1) ----------------------------------------- *)

(** A merge context is created per whole-state merge and shared by the
    merges of every integer state component, so that components varying
    with the same stride share the same variable unknown:
    - [u]: stride → generated variable unknown ([U] in the paper);
    - [mu1], [mu2]: substitutions recording what each generated or matched
      variable stands for in each input state ([μ₁], [μ₂]);
    - [widen]: when set, no new variable unknowns are invented and unequal
      values merge straight to ⊤ (termination safety net). *)
module Ctx = struct
  type ctx = {
    gen : Gen.t;
    u : (int, int) Hashtbl.t;
    mu1 : (int, t) Hashtbl.t;
    mu2 : (int, t) Hashtbl.t;
    widen : bool;
  }

  let create ?(widen = false) gen =
    {
      gen;
      u = Hashtbl.create 4;
      mu1 = Hashtbl.create 4;
      mu2 = Hashtbl.create 4;
      widen;
    }
end

(** [match_ i1 i2] (paper's [match]): [i1] has variable term [a₁·v₁];
    returns the IntVal [s] with [i1[v₁ := s] = i2], when one exists.  The
    paper states the case where [i2] has a variable term [a₁·v₂] with the
    same coefficient, giving [s = v₂ + constant].  We additionally allow
    [i2] with {e no} variable term, giving a constant [s] — required for
    the paper's own motivating example: when a loop head generalizes a
    counter from [0] to a fresh unknown [v], already-recorded successor
    states still hold the constant [0], and their merge [merge(v, 0)] must
    produce [v] with [μ₂(v) = 0] rather than ⊤. *)
let match_ (i1 : lin) (i2 : lin) : t option =
  match i1.var with
  | None -> None
  | Some (a1, _) -> (
      let v2_shape =
        match i2.var with
        | Some (a2, v2) when a2 = a1 -> Some (Some v2)
        | Some _ -> None (* mismatched coefficients *)
        | None -> Some None (* s will be a pure constant expression *)
      in
      match v2_shape with
      | None -> None
      | Some v2 -> (
          let r1 = Lin { i1 with var = None } in
          let r2 = Lin { i2 with var = None } in
          match sub r2 r1 with
          | Top -> None
          | Lin { var = _; consts; base } ->
              let divisible =
                base mod a1 = 0
                && List.for_all (fun (k, _) -> k mod a1 = 0) consts
              in
              if not divisible then None
              else
                let consts = List.map (fun (k, c) -> (k / a1, c)) consts in
                let base = base / a1 in
                Some
                  (Lin
                     { var = Option.map (fun v -> (1, v)) v2; consts; base })))

(** Direct transcription of the paper's Figure 1 ([merge_intvals]).  Merges
    one integer state component appearing as [i1] in the first input state
    and [i2] in the second. *)
let rec merge (ctx : Ctx.ctx) (i1 : t) (i2 : t) : t =
  match i1, i2 with
  | Top, _ | _, Top -> Top
  | Lin l1, Lin l2 ->
      if equal_lin l1 l2 then i1
      else if ctx.widen then Top
      else if var_term i1 = None && var_term i2 <> None then
        (* line 8-9: ensure i1 carries the variable term if either does,
           swapping the substitution maps accordingly *)
        merge { ctx with mu1 = ctx.mu2; mu2 = ctx.mu1 } i2 i1
      else begin
        let delta = sub i2 i1 in
        match to_literal delta, var_term i1 with
        | Some d, None -> (
            (* lines 11-19: two distinct constants; invent or reuse the
               variable unknown that varies with stride d *)
            match Hashtbl.find_opt ctx.u d with
            | None ->
                let v = Gen.fresh_var ctx.gen in
                Hashtbl.replace ctx.u d v;
                Hashtbl.replace ctx.mu1 v i1;
                Hashtbl.replace ctx.mu2 v i2;
                of_var_unknown v
            | Some v -> (
                match Hashtbl.find_opt ctx.mu1 v with
                | Some m1 ->
                    (* d = i1 - μ1(v) must be variable-free (asserted in
                       the paper); return v + d *)
                    let d = sub i1 m1 in
                    if var_term d = None && not (is_top d) then
                      add (of_var_unknown v) d
                    else Top
                | None -> Top))
        | _, Some (a1, v1) when a1 <> 0 -> (
            (* lines 21-31 *)
            match Hashtbl.find_opt ctx.mu2 v1 with
            | Some s ->
                if equal (subst_var i1 ~v:v1 ~by:s) i2 then i1 else Top
            | None -> (
                match match_ l1 l2 with
                | Some s ->
                    Hashtbl.replace ctx.mu2 v1 s;
                    i1
                | None -> Top))
        | _, _ -> Top
      end

(** Merge without stride discovery: equal values survive, anything else is
    ⊤.  Used where the paper's analysis does not thread a merge context
    (e.g. collapsing [R_id/A] into [R_id/B] at an allocation). *)
let merge_flat i1 i2 = if equal i1 i2 then i1 else Top
