(** Null ranges ("IntRanges", paper §3.2-3.3): the subrange of an object
    array's valid indices known to contain null.  [Empty] is the lattice
    top ("smaller ranges are larger in the lattice"). *)

type t =
  | Empty
  | Full of Intval.t * Intval.t  (** closed interval [lo..hi] *)
  | From of Intval.t  (** all valid indices ≥ lo *)
  | Up_to of Intval.t  (** all valid indices ≤ hi *)

val pp : t Fmt.t
val equal : t -> t -> bool

val of_new_array : Intval.t -> t
(** The whole index range of a just-allocated array of the given length. *)

val contract : t -> Intval.t -> t
(** The range after a store at the given index (paper §3.3): only stores
    at either end keep information — the conservatism behind the §3.6
    overflow argument. *)

val mem : t -> Intval.t -> len:Intval.t -> bool
(** Is a {e successful} (bounds-checked) store at the index provably
    inside the null range?  A [Full] range's bounds are implied by the
    bounds check when they equal [0] / [len-1]. *)

val promote_like : len:Intval.t -> t -> t -> t
(** Promote a [Full] range to the other operand's half-open shape when a
    bound coincides with the end of the array. *)

val merge : Intval.Ctx.ctx -> len1:Intval.t -> len2:Intval.t -> t -> t -> t
(** Control-flow-join merge; bounds are integer state components (§3.5)
    and go through the shared stride-discovery context. *)

val merge_flat : t -> t -> t
(** Equal-or-[Empty]. *)
