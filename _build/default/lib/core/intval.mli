(** Symbolic integer values ("IntVals", paper §3.2) and the
    stride-discovery merge procedure (paper Figure 1).

    An IntVal is ⊤ or a linear combination
    [a·v + k₀·c₀ + … + kₙ·cₙ + b] with at most one term in a {e variable
    unknown} (invented at control-flow merges to express values that vary
    with a common stride), any number of terms in {e constant unknowns}
    (opaque but fixed values such as argument-array lengths), and an
    integer literal. *)

type t = Top | Lin of lin

and lin = {
  var : (int * int) option;  (** coefficient × variable-unknown id *)
  consts : (int * int) list;
      (** coefficient × constant-unknown id; sorted by id, coeffs ≠ 0 *)
  base : int;
}

val top : t
val zero : t
val const : int -> t

(** Fresh-unknown supply; one per analyzed method. *)
module Gen : sig
  type t

  val create : unit -> t
  val fresh_const : t -> int
  val fresh_var : t -> int
end

val of_const_unknown : int -> t
val of_var_unknown : int -> t
val is_top : t -> bool

val to_literal : t -> int option
(** The literal integer, if the value is a pure literal. *)

val is_literal : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t

(** {2 Symbolic arithmetic} — ⊤ where linearity would be lost. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : int -> t -> t
val mul : t -> t -> t
val binop : Jir.Types.ibin -> t -> t -> t

val var_term : t -> (int * int) option
(** The variable-unknown term, as (coefficient, id); [None] when absent
    or ⊤ (the paper's [var_term]). *)

val provably_ge : t -> t -> bool
(** [provably_ge a b] — is [a - b] a non-negative literal?  Symbolic
    terms must cancel exactly. *)

val provably_gt : t -> t -> bool

val subst_var : t -> v:int -> by:t -> t
(** Replace variable unknown [v] (the paper's substitution application
    [μ(i)]). *)

(** {2 Merging (paper Figure 1)} *)

(** A merge context is created per whole-state merge and shared by the
    merges of every integer state component, so components varying with
    the same stride share one variable unknown ([U], [μ₁], [μ₂] in the
    paper).  [widen] disables invention of new unknowns (termination
    safety net). *)
module Ctx : sig
  type ctx = {
    gen : Gen.t;
    u : (int, int) Hashtbl.t;
    mu1 : (int, t) Hashtbl.t;
    mu2 : (int, t) Hashtbl.t;
    widen : bool;
  }

  val create : ?widen:bool -> Gen.t -> ctx
end

val match_ : lin -> lin -> t option
(** The paper's [match], extended to variable-free right operands (see
    DESIGN.md §6): returns [s] with [i1[v₁ := s] = i2] when one exists. *)

val merge : Ctx.ctx -> t -> t -> t
(** Direct transcription of the paper's Figure 1 ([merge_intvals]). *)

val merge_flat : t -> t -> t
(** Equal-or-⊤ merge, for places where no context is threaded (e.g. the
    A→B collapse at an allocation site). *)
