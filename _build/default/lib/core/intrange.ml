(** Null ranges ("IntRanges", paper §3.2-3.3): the subrange of an object
    array's valid indices known to contain null.

    - [Full (lo, hi)] — the closed interval [lo..hi]; used right after
      allocation (the whole index range) and while it contracts from either
      end.
    - [From lo] — all valid indices ≥ lo ("[lo..]").
    - [Up_to hi] — all valid indices ≤ hi ("[..hi]").
    - [Empty] — nothing known null: the {e top} element of the paper's
      lattice ("smaller ranges are larger in the lattice").

    [contract] embodies the paper's deliberately conservative heuristics:
    it only recognizes stores at either end of the uninitialized range and
    drops to [Empty] otherwise.  This conservatism is also what makes the
    §3.6 overflow argument go through: a store site whose barrier was
    eliminated must walk indices one by one, so a wrapped-around index would
    have to pass through a negative value and raise a bounds exception
    first. *)

type t =
  | Empty
  | Full of Intval.t * Intval.t
  | From of Intval.t
  | Up_to of Intval.t

let pp ppf = function
  | Empty -> Fmt.string ppf "[]"
  | Full (lo, hi) -> Fmt.pf ppf "[%a..%a]" Intval.pp lo Intval.pp hi
  | From lo -> Fmt.pf ppf "[%a..]" Intval.pp lo
  | Up_to hi -> Fmt.pf ppf "[..%a]" Intval.pp hi

let equal a b =
  match a, b with
  | Empty, Empty -> true
  | Full (a1, a2), Full (b1, b2) -> Intval.equal a1 b1 && Intval.equal a2 b2
  | From a, From b | Up_to a, Up_to b -> Intval.equal a b
  | (Empty | Full _ | From _ | Up_to _), _ -> false

(** The whole index range of a just-allocated array of length [n]. *)
let of_new_array n = Full (Intval.const 0, Intval.add_const (-1) n)

(** [contract r ind] — the null range after a store at index [ind]
    (paper §3.3).  Only stores at either end keep information. *)
let contract (r : t) (ind : Intval.t) : t =
  let eq = Intval.equal in
  let lt a b = Intval.provably_gt b a in
  match r with
  | Empty -> Empty
  | Full (lo, hi) ->
      if eq ind lo then Full (Intval.add_const 1 lo, hi)
      else if eq ind hi then Full (lo, Intval.add_const (-1) hi)
      else if lt ind lo || lt hi ind then r
      else Empty
  | From lo ->
      if eq ind lo then From (Intval.add_const 1 lo)
      else if lt ind lo then r
      else Empty
  | Up_to hi ->
      if eq ind hi then Up_to (Intval.add_const (-1) hi)
      else if lt hi ind then r
      else Empty

(** [mem r ind ~len] — is a {e successful} store at [ind] provably inside
    the null range?  The runtime bounds check guarantees
    [0 ≤ ind ≤ len-1], so a [Full] range's upper bound need not be proven
    when it equals [len-1] and its lower bound need not be proven when it
    is literally [0]; [From]/[Up_to] need only their one explicit bound. *)
let mem (r : t) (ind : Intval.t) ~(len : Intval.t) : bool =
  let ge = Intval.provably_ge in
  match r with
  | Empty -> false
  | From lo -> ge ind lo
  | Up_to hi -> ge hi ind
  | Full (lo, hi) ->
      (ge ind lo || Intval.equal lo (Intval.const 0))
      && (ge hi ind || Intval.equal hi (Intval.add_const (-1) len))

(** Promote a [Full] range to a half-open shape when a bound coincides with
    the end of the array ([Full (0, hi) ≡ Up_to hi];
    [Full (lo, len-1) ≡ From lo]).  [len] is the array's length in the same
    state the range came from. *)
let promote_like ~(len : Intval.t) (shape : t) (r : t) : t =
  match shape, r with
  | From _, Full (lo, hi) ->
      if Intval.equal hi (Intval.add_const (-1) len) then From lo else Empty
  | Up_to _, Full (lo, hi) ->
      if Intval.equal lo (Intval.const 0) then Up_to hi else Empty
  | _, _ -> r

(** Merge two null ranges at a control-flow join.  Bounds are merged as
    integer state components through the shared merge context (paper §3.5),
    so they can pick up the same stride variables as loop counters.
    [len1]/[len2] are the array's length in each input state, used to
    promote [Full] ranges to half-open ones when shapes disagree. *)
let merge (ctx : Intval.Ctx.ctx) ~len1 ~len2 (r1 : t) (r2 : t) : t =
  let r1 = promote_like ~len:len1 r2 r1 in
  let r2 = promote_like ~len:len2 r1 r2 in
  let m a b =
    let v = Intval.merge ctx a b in
    if Intval.is_top v then None else Some v
  in
  match r1, r2 with
  | Empty, _ | _, Empty -> Empty
  | Full (lo1, hi1), Full (lo2, hi2) -> (
      match m lo1 lo2, m hi1 hi2 with
      | Some lo, Some hi -> Full (lo, hi)
      | _ -> Empty)
  | From lo1, From lo2 -> (
      match m lo1 lo2 with Some lo -> From lo | None -> Empty)
  | Up_to hi1, Up_to hi2 -> (
      match m hi1 hi2 with Some hi -> Up_to hi | None -> Empty)
  | (Full _ | From _ | Up_to _), _ -> Empty

(** Flat merge (equal or [Empty]); used when collapsing [R_id/A] into
    [R_id/B] at an allocation, where no merge context is threaded. *)
let merge_flat r1 r2 = if equal r1 r2 then r1 else Empty
