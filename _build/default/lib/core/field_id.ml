(** Identifiers of abstract heap locations within an object: a named field
    of a class, or the paper's pseudo-field [f_elems] that collapses all
    elements of an object array (§2.4: "we treat an object array as an
    object with a single field f_elems"). *)

type t =
  | F of Jir.Types.class_name * Jir.Types.field_name
  | Elems

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let of_field_ref (fr : Jir.Types.field_ref) = F (fr.fclass, fr.fname)

let pp ppf = function
  | F (c, f) -> Fmt.pf ppf "%s.%s" c f
  | Elems -> Fmt.string ppf "elems"
