(** Abstract reference symbols ("Refs" in the paper, §2.1).

    When analyzing a method we create two symbols per allocation site [id]:
    [Alloc {site = id; recent = true}] (the paper's [R_id/A]) denotes the
    object most recently allocated at the site and is {e unique} — it stands
    for a single concrete reference, so stores through it may use strong
    update.  [Alloc {site = id; recent = false}] ([R_id/B]) summarizes all
    objects allocated at the site earlier in the method's execution.

    [Arg i] is the initial value of reference argument [i]; [Global]
    ("GlobalRef") stands for every object allocated outside the method and
    not passed to it. *)

type t =
  | Global
  | Arg of int
  | Alloc of { site : int; recent : bool }

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let pp ppf = function
  | Global -> Fmt.string ppf "G"
  | Arg i -> Fmt.pf ppf "arg%d" i
  | Alloc { site; recent = true } -> Fmt.pf ppf "R%d/A" site
  | Alloc { site; recent = false } -> Fmt.pf ppf "R%d/B" site

(** [unique ~in_ctor r] — does [r] denote exactly one concrete reference?
    [R_id/A] always does; the receiver argument does inside a constructor
    (§2.3).  Unique references admit strong update (§2.4). *)
let unique ~in_ctor = function
  | Alloc { recent; _ } -> recent
  | Arg 0 -> in_ctor
  | Arg _ | Global -> false

(** The older-objects summary symbol for an allocation site. *)
let summary site = Alloc { site; recent = false }

let recent site = Alloc { site; recent = true }

(** Substitution used by the [newinstance] transfer (§2.4): the paper's
    [rngSubst]/[replS] replace [R_id/A] by [R_id/B]. *)
let subst ~from_sym ~to_sym r = if equal r from_sym then to_sym else r

module Set = struct
  include Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp) (elements s)
end
