lib/core/intval.mli: Fmt Hashtbl Jir
