lib/core/intrange.mli: Fmt Intval
