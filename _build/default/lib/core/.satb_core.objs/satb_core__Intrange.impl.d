lib/core/intrange.ml: Fmt Intval
