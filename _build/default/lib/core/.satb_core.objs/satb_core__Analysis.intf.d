lib/core/analysis.mli: Jir
