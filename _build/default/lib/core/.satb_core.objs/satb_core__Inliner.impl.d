lib/core/inliner.ml: Array Fun Jir List
