lib/core/state.ml: Array Field_id Fmt Intrange Intval Jir List Map Option Refsym Set String
