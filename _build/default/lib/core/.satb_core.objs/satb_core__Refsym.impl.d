lib/core/refsym.ml: Fmt Stdlib
