lib/core/inliner.mli: Jir
