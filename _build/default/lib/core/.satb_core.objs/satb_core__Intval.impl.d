lib/core/intval.ml: Fmt Hashtbl Jir List Option Printf
