lib/core/field_id.ml: Fmt Jir Stdlib
