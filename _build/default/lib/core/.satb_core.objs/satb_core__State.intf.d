lib/core/state.mli: Field_id Fmt Intrange Intval Jir Map Refsym Set
