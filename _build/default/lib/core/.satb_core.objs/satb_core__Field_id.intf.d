lib/core/field_id.mli: Fmt Jir
