lib/core/driver.ml: Analysis Fmt Hashtbl Inliner Jir List Option Sys
