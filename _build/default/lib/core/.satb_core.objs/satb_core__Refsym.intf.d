lib/core/refsym.mli: Fmt Stdlib
