lib/core/analysis.ml: Array Field_id Fmt Fun Hashtbl Intrange Intval Jir List Queue Refsym State
