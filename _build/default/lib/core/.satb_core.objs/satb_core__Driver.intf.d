lib/core/driver.mli: Analysis Fmt Hashtbl Jir
