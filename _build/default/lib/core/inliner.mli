(** Method inlining (paper §2.4, §4.4).  The analyses run after inlined
    bodies are expanded: a non-inlined call conservatively escapes every
    reference argument, so without inlining even the constructor call
    after every allocation would make the fresh object escape.  The
    inline limit (maximum callee size) is the paper's Figure 2
    parameter. *)

type config = {
  limit : int;  (** max callee size in instructions; 0 disables *)
  max_depth : int;
  max_method_size : int;
}

val config : ?max_depth:int -> ?max_method_size:int -> int -> config

val inline_method :
  Jir.Program.t -> config -> Jir.Types.meth -> Jir.Types.meth
(** Inline within one method, relocating handlers and labels.  Recursive
    chains are cut by keeping the call; callees with exception handlers
    are never inlined (keeps handler semantics exact). *)

val inline_program : ?conf:config -> Jir.Program.t -> Jir.Program.t
(** Inline every method, each expanded against the {e original} program
    (as a JIT compiling methods independently would). *)
