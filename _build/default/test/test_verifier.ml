(* Verifier tests: the dataflow rules the analysis later relies on. *)

let verify src =
  Jir.Verifier.verify_program (Jir.Parser.parse_linked src)

let expect_ok name src =
  match verify src with
  | Ok () -> ()
  | Error (e :: _) ->
      Alcotest.failf "%s: unexpected verify error: %a" name
        Jir.Verifier.pp_error e
  | Error [] -> assert false

let expect_err name src frag =
  match verify src with
  | Ok () -> Alcotest.failf "%s: expected a verify error" name
  | Error (e :: _) ->
      let msg = Fmt.str "%a" Jir.Verifier.pp_error e in
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S (got %S)" name frag msg)
        true (contains msg frag)
  | Error [] -> assert false

let wrap body = "class C\n field ref r\n static ref s\n method void <init> (ref) locals 1 ctor\n  return\n end\n method void m () locals 3\n" ^ body ^ " end\nend\n"

let test_accepts_all_workloads () =
  List.iter
    (fun (w : Workloads.Spec.t) ->
      match Jir.Verifier.verify_program (Workloads.Spec.parse w) with
      | Ok () -> ()
      | Error (e :: _) ->
          Alcotest.failf "%s: %a" w.name Jir.Verifier.pp_error e
      | Error [] -> assert false)
    Workloads.Registry.all

let test_stack_underflow () =
  expect_err "pop empty" (wrap "  pop\n  return\n") "underflow"

let test_type_mismatch_int_ref () =
  expect_err "iadd on refs" (wrap "  aconst_null\n  aconst_null\n  iadd\n  pop\n  return\n")
    "expected int"

let test_ref_where_int () =
  expect_err "ifnull on int" (wrap "  iconst 1\n  ifnull out\n out:\n  return\n")
    "expected initialized ref"

let test_falls_off_end () =
  expect_err "no return" (wrap "  iconst 1\n  pop\n") "falls off"

let test_stack_depth_mismatch_at_join () =
  expect_err "join depth"
    (wrap
       "  iconst 1\n  ifeq other\n  iconst 5\n  goto join\n other:\n join:\n  return\n")
    "stack depth mismatch"

let test_stack_type_mismatch_at_join () =
  expect_err "join type"
    (wrap
       "  iconst 1\n\
       \  ifeq other\n\
       \  iconst 5\n\
       \  goto join\n\
       \ other:\n\
       \  aconst_null\n\
       \ join:\n\
       \  pop\n\
       \  return\n")
    "type mismatch"

let test_local_read_before_write () =
  expect_err "unset local" (wrap "  iload 2\n  pop\n  return\n")
    "read before write"

let test_local_conflict_read () =
  (* local 2 holds an int on one path and a ref on the other: reading it
     after the join is an error, not reading it is fine *)
  expect_err "conflicting local"
    (wrap
       "  iconst 1\n\
       \  ifeq other\n\
       \  iconst 5\n\
       \  istore 2\n\
       \  goto join\n\
       \ other:\n\
       \  aconst_null\n\
       \  astore 2\n\
       \ join:\n\
       \  iload 2\n\
       \  pop\n\
       \  return\n")
    "local 2";
  expect_ok "conflict unread"
    (wrap
       "  iconst 1\n\
       \  ifeq other\n\
       \  iconst 5\n\
       \  istore 2\n\
       \  goto join\n\
       \ other:\n\
       \  aconst_null\n\
       \  astore 2\n\
       \ join:\n\
       \  return\n")

let test_uninitialized_object_discipline () =
  (* using a fresh object before constructing it is rejected *)
  expect_err "putfield on uninit"
    (wrap "  new C\n  aconst_null\n  putfield C.r\n  return\n")
    "expected initialized ref";
  expect_err "store uninit to static"
    (wrap "  new C\n  putstatic C.s\n  return\n")
    "expected initialized ref";
  expect_err "pass uninit as plain arg"
    "class C\n\
    \ method void <init> (ref) locals 1 ctor\n\
    \  return\n\
    \ end\n\
    \ method void sp (ref) locals 1\n\
    \  return\n\
    \ end\n\
    \ method void m () locals 1\n\
    \  new C\n\
    \  spawn C.sp\n\
    \  return\n\
    \ end\n\
     end\n"
    "expected initialized ref";
  (* constructing through a dup'd copy initializes both copies *)
  expect_ok "dup + init"
    (wrap
       "  new C\n  dup\n  invoke C.<init>\n  aconst_null\n  putfield C.r\n  return\n")

let test_ctor_on_initialized_rejected () =
  expect_err "ctor on initialized ref"
    (wrap "  aconst_null\n  invoke C.<init>\n  return\n")
    "receiver must be uninitialized"

let test_initialization_joins_must_agree () =
  (* merging two different uninitialized sites is rejected *)
  expect_err "uninit merge"
    (wrap
       "  iconst 1\n\
       \  ifeq other\n\
       \  new C\n\
       \  goto join\n\
       \ other:\n\
       \  new C\n\
       \ join:\n\
       \  invoke C.<init>\n\
       \  return\n")
    "stack type mismatch"

let test_return_type_checked () =
  expect_err "void returns value"
    (wrap "  iconst 1\n  ireturn\n") "return type mismatch";
  expect_err "wrong return kind"
    ("class C\n method int m () locals 0\n  return\n end\nend\n")
    "return type mismatch"

let test_unknown_refs () =
  expect_err "unknown field"
    (wrap "  aconst_null\n  getfield C.nope\n  pop\n  return\n")
    "unknown field";
  expect_err "unknown method" (wrap "  invoke C.nope\n  return\n")
    "unknown method"

let test_branch_out_of_range () =
  (* hand-built method with a bogus target (the parser can't produce one) *)
  let m =
    {
      Jir.Types.mname = "m";
      params = [];
      ret = None;
      is_constructor = false;
      max_locals = 0;
      code = [| Jir.Types.Goto 99; Jir.Types.Return |];
      handlers = [];
      labels = [];
    }
  in
  let prog =
    Jir.Program.of_program
      { classes = [ { cname = "C"; fields = []; statics = []; methods = [ m ] } ] }
  in
  match Jir.Verifier.verify_program prog with
  | Ok () -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_handler_rules () =
  expect_ok "handler with empty stack"
    (wrap
       " t0:\n\
       \  iconst 1\n\
       \  iconst 0\n\
       \  idiv\n\
       \  pop\n\
       \ t1:\n\
       \  return\n\
       \ h:\n\
       \  return\n\
       \  catch arith t0 t1 h\n");
  expect_err "spawning a constructor"
    ("class C\n\
     \ method void <init> (ref) locals 1 ctor\n\
     \  return\n\
     \ end\n\
     \ method void m () locals 1\n\
     \  aconst_null\n\
     \  spawn C.<init>\n\
     \  return\n\
     \ end\n\
      end\n")
    "cannot spawn a constructor"

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("accepts all workloads", test_accepts_all_workloads);
      ("stack underflow", test_stack_underflow);
      ("int/ref mismatch", test_type_mismatch_int_ref);
      ("ref where int", test_ref_where_int);
      ("falls off end", test_falls_off_end);
      ("join depth mismatch", test_stack_depth_mismatch_at_join);
      ("join type mismatch", test_stack_type_mismatch_at_join);
      ("read before write", test_local_read_before_write);
      ("local conflicts", test_local_conflict_read);
      ("uninitialized discipline", test_uninitialized_object_discipline);
      ("ctor on initialized", test_ctor_on_initialized_rejected);
      ("uninit join", test_initialization_joins_must_agree);
      ("return types", test_return_type_checked);
      ("unknown refs", test_unknown_refs);
      ("branch out of range", test_branch_out_of_range);
      ("handlers and spawn", test_handler_rules);
    ]
