(* Mini-Java frontend tests: lexing, parsing, type checking, code
   generation semantics, and the paper's examples written as source. *)

let compile src = Jsrc.Compile.compile_source src

let compile_verified src =
  let prog = compile src in
  (match Jir.Verifier.verify_program prog with
  | Ok () -> ()
  | Error (e :: _) ->
      Alcotest.failf "compiled code fails verification: %a"
        Jir.Verifier.pp_error e
  | Error [] -> assert false);
  prog

let run ?(entry = "Main.main") src =
  let prog = compile_verified src in
  let entry_ref =
    match String.split_on_char '.' entry with
    | [ c; m ] -> { Jir.Types.mclass = c; mname = m }
    | _ -> failwith "bad entry"
  in
  Jrt.Runner.run prog ~entry:entry_ref

let out_static (r : Jrt.Runner.report) =
  match Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out") with
  | Some (Jrt.Value.Int n) -> n
  | _ -> Alcotest.fail "no int Main.out"

let check_out name src expected =
  let r = run src in
  Alcotest.(check (list (pair int string))) (name ^ " errors") []
    r.thread_errors;
  Alcotest.(check int) name expected (out_static r)

(* ---- lexer -------------------------------------------------------------- *)

let test_lexer () =
  let toks =
    Jsrc.Jlexer.tokenize
      "class C { /* block\ncomment */ int x; // line\n  a <= b != 12 }"
    |> List.map (fun (s : Jsrc.Jlexer.spanned) -> s.tok)
  in
  Alcotest.(check (list string)) "token stream"
    [
      "keyword \"class\""; "identifier \"C\""; "\"{\""; "keyword \"int\"";
      "identifier \"x\""; "\";\""; "identifier \"a\""; "\"<=\"";
      "identifier \"b\""; "\"!=\""; "integer 12"; "\"}\""; "end of input";
    ]
    (List.map Jsrc.Jlexer.string_of_token toks)

let test_lexer_errors () =
  (match Jsrc.Jlexer.tokenize "a @ b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Jsrc.Jlexer.Lex_error { message; _ } ->
      Alcotest.(check bool) "mentions char" true
        (String.length message > 0));
  match Jsrc.Jlexer.tokenize "/* unterminated" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Jsrc.Jlexer.Lex_error _ -> ()

(* ---- type / parse errors ------------------------------------------------ *)

let expect_error name src =
  match compile src with
  | _ -> Alcotest.failf "%s: expected a compile error" name
  | exception Jsrc.Compile.Type_error _ -> ()
  | exception Jsrc.Jparser.Parse_error _ -> ()

let test_errors () =
  expect_error "unknown variable"
    "class Main { static void main() { x = 1; } }";
  expect_error "type mismatch"
    "class Main { static void main() { int x = null; } }";
  expect_error "arity"
    "class Main { static int f(int a) { return a; } static void main() { int x = f(1, 2); } }";
  expect_error "this in static"
    "class Main { int f; static void main() { int x = this.f; } }";
  expect_error "void as value"
    "class Main { static void g() { } static void main() { int x = g(); } }";
  expect_error "ordered ref comparison"
    "class T { } class Main { static void main() { T a = new T(); if (a < a) { } } }";
  expect_error "unknown field"
    "class T { } class Main { static void main() { T a = new T(); a.f = null; } }";
  expect_error "duplicate variable"
    "class Main { static void main() { int x = 1; int x = 2; } }";
  expect_error "instance call from static"
    "class Main { void m() { } static void main() { m(); } }";
  expect_error "assignment to call"
    "class Main { static int f() { return 1; } static void main() { f() = 2; } }";
  expect_error "int against null"
    "class Main { static void main() { int x = 1; if (x == null) { } } }"

(* ---- semantics ----------------------------------------------------------- *)

let test_arith_and_for () =
  check_out "sum of squares"
    {|
class Main {
  static int out;
  static void main() {
    int acc = 0;
    for (int i = 1; i <= 5; i = i + 1) { acc = acc + i * i; }
    Main.out = acc;
  }
}
|}
    55

let test_recursion () =
  check_out "factorial"
    {|
class Main {
  static int out;
  static int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
  }
  static void main() { Main.out = fact(6); }
}
|}
    720

let test_objects_and_instance_methods () =
  check_out "linked list sum via instance methods"
    {|
class Node {
  Node next;
  int v;
  Node(Node n, int v) { this.next = n; this.v = v; }
  int sum() {
    if (this.next == null) { return this.v; }
    return this.v + this.next.sum();
  }
}
class Main {
  static int out;
  static void main() {
    Node l = new Node(new Node(new Node(null, 30), 10), 2);
    Main.out = l.sum();
  }
}
|}
    42

let test_arrays () =
  check_out "array reverse and sum"
    {|
class Main {
  static int out;
  static void main() {
    int[] a = new int[6];
    for (int i = 0; i < a.length; i = i + 1) { a[i] = i * 10; }
    int[] b = new int[6];
    for (int j = 0; j < 6; j = j + 1) { b[5 - j] = a[j]; }
    int acc = 0;
    for (int k = 0; k < 6; k = k + 1) { acc = acc + b[k] * (k + 1); }
    Main.out = acc;
  }
}
|}
    (* b = [50;40;30;20;10;0]; weighted: 50+80+90+80+50+0 = 350 *)
    350

let test_short_circuit () =
  (* the right operand of && must not run when the left is false: here it
     would divide by zero *)
  check_out "short circuit"
    {|
class Main {
  static int out;
  static void main() {
    int zero = 0;
    int x = 7;
    if (zero != 0 && 10 / zero > 1) { x = 1; }
    if (zero == 0 || 10 / zero > 1) { x = x + 1; }
    Main.out = x;
  }
}
|}
    8

let test_while_and_not () =
  check_out "while with negated condition"
    {|
class Main {
  static int out;
  static void main() {
    int i = 0;
    while (!(i >= 10)) { i = i + 2; }
    Main.out = i;
  }
}
|}
    10

let test_spawn () =
  let r =
    run
      {|
class Main {
  static int out;
  static void worker(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + 1; }
    Main.out = acc;
  }
  static void main() { spawn Main.worker(25); }
}
|}
  in
  Alcotest.(check (list (pair int string))) "no errors" [] r.thread_errors;
  Alcotest.(check int) "worker ran" 25 (out_static r)

let test_static_vs_local_disambiguation () =
  (* a local named like a class shadows the class for member access *)
  check_out "shadowing"
    {|
class Box {
  int v;
  static int tag;
}
class Main {
  static int out;
  static void main() {
    Box.tag = 5;
    Box Box = new Box();
    Box.v = 37;
    Main.out = Box.v + 5;
  }
}
|}
    42

(* ---- the paper's examples as source ------------------------------------- *)

let paper_expand =
  {|
class T { T payload; }
class Main {
  static T[] result;
  static T[] expand(T[] ta) {
    T[] new_ta = new T[ta.length * 2];
    for (int i = 0; i < ta.length; i = i + 1) { new_ta[i] = ta[i]; }
    return new_ta;
  }
  static void main() {
    T[] src = new T[8];
    for (int i = 0; i < 8; i = i + 1) { src[i] = new T(); }
    Main.result = Main.expand(src);
  }
}
|}

let verdicts src ~meth =
  let prog = compile_verified src in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      if String.equal r.mr_method meth then
        List.map (fun (v : Satb_core.Analysis.verdict) -> v.v_elide) r.verdicts
      else [])
    compiled.results

let test_paper_expand_verbatim () =
  Alcotest.(check (list bool)) "copy-loop store elided" [ true ]
    (verdicts paper_expand ~meth:"expand")

let test_paper_two_names_in_java () =
  (* §2.4: W1 on the fresh object elides, W2 on the saved older object
     does not *)
  let src =
    {|
class T { T f1; }
class Main {
  static T sink;
  static void loop(int n) {
    T saved = null;
    for (int i = 0; i < n; i = i + 1) {
      T t = new T();
      t.f1 = Main.sink;
      if (saved != null) { saved.f1 = Main.sink; }
      saved = t;
    }
  }
  static void main() { Main.sink = new T(); loop(8); }
}
|}
  in
  Alcotest.(check (list bool)) "W1 elided, W2 kept" [ true; false ]
    (verdicts src ~meth:"loop")

let test_memo_idiom_in_java () =
  (* §4.3 null-or-same, as the natural source idiom *)
  let src =
    {|
class Scope { Scope cache; }
class Main {
  static Scope seed;
  static void resolve(int n) {
    Scope s = new Scope();
    s.cache = Main.seed;
    for (int i = 0; i < n; i = i + 1) {
      Scope t = s.cache;
      if (t == null) { t = Main.seed; }
      s.cache = t;
    }
  }
  static void main() { Main.seed = new Scope(); resolve(10); }
}
|}
  in
  let prog = compile_verified src in
  let conf = { Satb_core.Analysis.default_config with null_or_same = true } in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 ~conf prog in
  let flags =
    List.concat_map
      (fun (r : Satb_core.Analysis.method_result) ->
        if String.equal r.mr_method "resolve" then
          List.map
            (fun (v : Satb_core.Analysis.verdict) -> v.v_elide)
            r.verdicts
        else [])
      compiled.results
  in
  Alcotest.(check (list bool)) "init elided, write-back null-or-same"
    [ true; true ] flags

let test_end_to_end_satb () =
  let prog = compile_verified paper_expand in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  let policy c m pc =
    not
      (Satb_core.Driver.needs_barrier compiled
         { sk_class = c; sk_method = m; sk_pc = pc })
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  let r =
    Jrt.Runner.run ~cfg
      ~gc:(Jrt.Runner.make_satb ~trigger_allocs:4 ~steps_per_increment:2 ())
      compiled.program
      ~entry:{ Jir.Types.mclass = "Main"; mname = "main" }
  in
  Alcotest.(check (list (pair int string))) "no errors" [] r.thread_errors;
  match r.gc with
  | Some g -> Alcotest.(check int) "no violations" 0 g.total_violations
  | None -> Alcotest.fail "expected gc"

let test_compiled_jasm_roundtrips () =
  (* compiled programs print as jasm and parse back identically *)
  let prog = compile paper_expand in
  let s1 = Jir.Pp.program_to_string (Jir.Program.program prog) in
  let s2 = Jir.Pp.program_to_string (Jir.Parser.parse_program s1) in
  Alcotest.(check string) "round-trip" s1 s2

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("lexer", test_lexer);
      ("lexer errors", test_lexer_errors);
      ("compile errors", test_errors);
      ("arith + for", test_arith_and_for);
      ("recursion", test_recursion);
      ("objects + instance methods", test_objects_and_instance_methods);
      ("arrays", test_arrays);
      ("short circuit", test_short_circuit);
      ("while + not", test_while_and_not);
      ("spawn", test_spawn);
      ("static/local disambiguation", test_static_vs_local_disambiguation);
      ("paper expand verbatim", test_paper_expand_verbatim);
      ("paper two-names in java", test_paper_two_names_in_java);
      ("memo idiom in java", test_memo_idiom_in_java);
      ("end-to-end SATB", test_end_to_end_satb);
      ("compiled jasm round-trips", test_compiled_jasm_roundtrips);
    ]
