(* Unit tests for the runtime substrate pieces that the bigger GC and
   interpreter tests exercise only indirectly: heap bookkeeping, the
   reachability oracle, and the barrier cost model. *)

(* ---- Heap -------------------------------------------------------------- *)

let test_heap_alloc_and_zeroing () =
  let h = Jrt.Heap.create () in
  let o = Jrt.Heap.alloc_object h "C" ~n_fields:3 in
  (match o.payload with
  | Jrt.Heap.Fields fs ->
      Alcotest.(check int) "field count" 3 (Array.length fs);
      Array.iter
        (fun v -> Alcotest.(check bool) "null" true (v = Jrt.Value.Null))
        fs
  | _ -> Alcotest.fail "expected object");
  let a = Jrt.Heap.alloc_ref_array h "C" ~len:4 in
  (match a.payload with
  | Jrt.Heap.Ref_array es ->
      Array.iter
        (fun v -> Alcotest.(check bool) "null elem" true (v = Jrt.Value.Null))
        es
  | _ -> Alcotest.fail "expected ref array");
  let ia = Jrt.Heap.alloc_int_array h ~len:2 in
  (match ia.payload with
  | Jrt.Heap.Int_array es ->
      Alcotest.(check (array int)) "zeroed" [| 0; 0 |] es
  | _ -> Alcotest.fail "expected int array");
  Alcotest.(check int) "ids sequential" 2 ia.id;
  Alcotest.(check int) "live count" 3 h.live_count;
  Alcotest.(check int) "total allocated" 3 h.total_allocated

let test_heap_growth () =
  let h = Jrt.Heap.create () in
  for _ = 1 to 3000 do
    ignore (Jrt.Heap.alloc_object h "C" ~n_fields:1)
  done;
  Alcotest.(check int) "3000 live" 3000 h.live_count;
  Alcotest.(check string) "retrievable past initial capacity" "C"
    (Jrt.Heap.get h 2999).cls

let test_heap_free_and_marks () =
  let h = Jrt.Heap.create () in
  let a = Jrt.Heap.alloc_object h "C" ~n_fields:0 in
  let b = Jrt.Heap.alloc_object h "C" ~n_fields:0 in
  a.marked <- true;
  Jrt.Heap.free h b;
  Alcotest.(check int) "one live" 1 h.live_count;
  Alcotest.(check bool) "b dead" true b.dead;
  let seen = ref 0 in
  Jrt.Heap.iter_live h (fun _ -> incr seen);
  Alcotest.(check int) "iter_live skips dead" 1 !seen;
  Jrt.Heap.clear_marks h;
  Alcotest.(check bool) "marks cleared" false a.marked;
  (* double free is idempotent *)
  Jrt.Heap.free h b;
  Alcotest.(check int) "still one live" 1 h.live_count

let test_out_edges () =
  let h = Jrt.Heap.create () in
  let a = Jrt.Heap.alloc_object h "C" ~n_fields:2 in
  let b = Jrt.Heap.alloc_object h "C" ~n_fields:0 in
  (match a.payload with
  | Jrt.Heap.Fields fs ->
      fs.(0) <- Jrt.Value.Ref b.id;
      fs.(1) <- Jrt.Value.Int 7
  | _ -> assert false);
  Alcotest.(check (list int)) "edges" [ b.id ] (Jrt.Heap.out_edges a);
  Alcotest.(check (list int)) "int arrays edgeless" []
    (Jrt.Heap.out_edges (Jrt.Heap.alloc_int_array h ~len:3))

(* ---- Oracle ------------------------------------------------------------ *)

let test_oracle_reachability () =
  let h = Jrt.Heap.create () in
  let mk () = Jrt.Heap.alloc_object h "C" ~n_fields:1 in
  let a = mk () and b = mk () and c = mk () and d = mk () in
  let link x y =
    match x.Jrt.Heap.payload with
    | Jrt.Heap.Fields fs -> fs.(0) <- Jrt.Value.Ref y.Jrt.Heap.id
    | _ -> assert false
  in
  link a b;
  link b c;
  (* d unlinked; cycle c -> a *)
  link c a;
  let set = Jrt.Oracle.reachable h [ a.id ] in
  Alcotest.(check int) "a,b,c reachable" 3 (Jrt.Oracle.Iset.cardinal set);
  Alcotest.(check bool) "d not reachable" false
    (Jrt.Oracle.Iset.mem d.id set);
  Alcotest.(check int) "empty roots" 0
    (Jrt.Oracle.Iset.cardinal (Jrt.Oracle.reachable h []))

(* ---- Barrier cost model ------------------------------------------------ *)

let test_satb_costs_match_paper_band () =
  let open Jrt.Barrier_cost in
  (* paper §1: 9-12 RISC instructions when marking is in progress *)
  let active_prenull =
    satb_cost ~mode:Conditional ~marking:true ~pre_null:true
  in
  let active_log =
    satb_cost ~mode:Conditional ~marking:true ~pre_null:false
  in
  Alcotest.(check bool) "active barrier in the 7..12 band" true
    (active_prenull >= 7 && active_log <= 12 && active_log > active_prenull);
  (* idle barrier is just the check *)
  Alcotest.(check int) "idle = flag check" check_marking
    (satb_cost ~mode:Conditional ~marking:false ~pre_null:true);
  (* no-barrier mode is free *)
  Alcotest.(check int) "no-barrier" 0
    (satb_cost ~mode:No_barrier ~marking:true ~pre_null:false);
  (* always-log skips the check *)
  Alcotest.(check int) "always-log saves the check" (active_log - check_marking)
    (satb_cost ~mode:Always_log ~marking:true ~pre_null:false);
  Alcotest.(check bool) "card mark far cheaper" true
    (card_mark_cost < active_prenull)

(* ---- Builder ----------------------------------------------------------- *)

let test_builder_errors () =
  Alcotest.check_raises "locals < params"
    (Jir.Builder.Build_error "method m: 0 locals < 1 params") (fun () ->
      ignore
        (Jir.Builder.create ~name:"m" ~params:[ Jir.Types.I ] ~locals:0 ()));
  let b = Jir.Builder.create ~name:"m" ~params:[] ~locals:0 () in
  Jir.Builder.label b "x";
  Alcotest.check_raises "duplicate label"
    (Jir.Builder.Build_error "method m: duplicate label x") (fun () ->
      Jir.Builder.label b "x");
  Jir.Builder.emit b (Jir.Types.Goto "nowhere");
  Alcotest.check_raises "unresolved label"
    (Jir.Builder.Build_error "method m: undefined label nowhere") (fun () ->
      ignore (Jir.Builder.finish b))

let test_builder_label_resolution () =
  let m =
    Jir.Builder.meth "m" ~params:[] ~locals:1 (fun b ->
        Jir.Builder.emit b (Jir.Types.Goto "end");
        Jir.Builder.label b "end";
        Jir.Builder.emit b Jir.Types.Return)
  in
  Alcotest.(check bool) "goto resolved to pc 1" true
    (m.code.(0) = Jir.Types.Goto 1);
  Alcotest.(check (list (pair int string))) "label recorded" [ (1, "end") ]
    m.labels

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("heap alloc + zeroing", test_heap_alloc_and_zeroing);
      ("heap growth", test_heap_growth);
      ("heap free + marks", test_heap_free_and_marks);
      ("out edges", test_out_edges);
      ("oracle reachability", test_oracle_reachability);
      ("barrier costs in paper band", test_satb_costs_match_paper_band);
      ("builder errors", test_builder_errors);
      ("builder label resolution", test_builder_label_resolution);
    ]
