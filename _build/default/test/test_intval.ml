(* Unit and property tests for the symbolic integer domain (paper §3.2,
   Figure 1). *)

module I = Satb_core.Intval

let iv : I.t Alcotest.testable = Alcotest.testable I.pp I.equal

let c = I.const
let c0 = I.of_const_unknown 0
let c1 = I.of_const_unknown 1
let v0 = I.of_var_unknown 0

(* ---- arithmetic -------------------------------------------------------- *)

let test_add_consts () =
  Alcotest.check iv "2 + 3" (c 5) (I.add (c 2) (c 3))

let test_add_symbolic () =
  Alcotest.check iv "c0 + c0 = 2c0" (I.scale 2 c0) (I.add c0 c0);
  Alcotest.check iv "c0 + c1 commutes" (I.add c0 c1) (I.add c1 c0);
  Alcotest.check iv "v0 + 1 - 1 = v0" v0 (I.add_const (-1) (I.add_const 1 v0))

let test_add_two_vars_is_top () =
  (* at most one variable-unknown term (§3.2) *)
  Alcotest.check iv "v0 + v1 = ⊤" I.top
    (I.add v0 (I.of_var_unknown 1))

let test_var_cancellation () =
  Alcotest.check iv "v0 - v0 = 0" (c 0) (I.sub v0 v0);
  Alcotest.check iv "(v0+c0) - (v0) = c0" c0 (I.sub (I.add v0 c0) v0)

let test_scale () =
  Alcotest.check iv "3 * (c0 + 2)" (I.add (I.scale 3 c0) (c 6))
    (I.scale 3 (I.add_const 2 c0));
  Alcotest.check iv "0 * ⊤ = 0" (c 0) (I.scale 0 I.top);
  Alcotest.check iv "1 * ⊤ = ⊤" I.top (I.scale 1 I.top)

let test_mul () =
  Alcotest.check iv "literal * symbolic" (I.scale 2 c0) (I.mul (c 2) c0);
  Alcotest.check iv "symbolic * literal" (I.scale 2 c0) (I.mul c0 (c 2));
  Alcotest.check iv "symbolic * symbolic = ⊤" I.top (I.mul c0 c1)

let test_binop_div () =
  Alcotest.check iv "6 / 2" (c 3) (I.binop Jir.Types.Div (c 6) (c 2));
  Alcotest.check iv "x / 0 = ⊤" I.top (I.binop Jir.Types.Div (c 6) (c 0));
  Alcotest.check iv "c0 / 2 = ⊤" I.top (I.binop Jir.Types.Div c0 (c 2));
  Alcotest.check iv "7 rem 4" (c 3) (I.binop Jir.Types.Rem (c 7) (c 4))

let test_literals () =
  Alcotest.(check (option int)) "to_literal 5" (Some 5) (I.to_literal (c 5));
  Alcotest.(check (option int)) "to_literal c0" None (I.to_literal c0);
  Alcotest.(check bool) "provably_ge 5 3" true (I.provably_ge (c 5) (c 3));
  Alcotest.(check bool) "provably_ge 3 5" false (I.provably_ge (c 3) (c 5));
  Alcotest.(check bool) "provably_ge (v0+1) v0" true
    (I.provably_ge (I.add_const 1 v0) v0);
  Alcotest.(check bool) "not provably_ge v0 c0" false (I.provably_ge v0 c0);
  Alcotest.(check bool) "provably_gt (c0+1) c0" true
    (I.provably_gt (I.add_const 1 c0) c0)

let test_subst () =
  (* (2v0 + 3)[v0 := c0 + 1] = 2c0 + 5 *)
  let e = I.add_const 3 (I.scale 2 v0) in
  Alcotest.check iv "substitution"
    (I.add_const 5 (I.scale 2 c0))
    (I.subst_var e ~v:0 ~by:(I.add_const 1 c0))

(* ---- merging (Figure 1) ------------------------------------------------ *)

let fresh_ctx ?(widen = false) () =
  I.Ctx.create ~widen (I.Gen.create ())

let test_merge_equal () =
  let ctx = fresh_ctx () in
  Alcotest.check iv "merge x x = x" (I.add_const 2 c0)
    (I.merge ctx (I.add_const 2 c0) (I.add_const 2 c0))

let test_merge_top () =
  let ctx = fresh_ctx () in
  Alcotest.check iv "merge ⊤ x" I.top (I.merge ctx I.top (c 1));
  Alcotest.check iv "merge x ⊤" I.top (I.merge ctx (c 1) I.top)

let test_merge_two_constants_invents_variable () =
  let ctx = fresh_ctx () in
  match I.merge ctx (c 0) (c 1) with
  | I.Lin { var = Some (1, _); consts = []; base = 0 } -> ()
  | other -> Alcotest.failf "expected fresh variable, got %a" I.pp other

let test_merge_shares_stride_variable () =
  (* two components with the same stride pick up the same variable with
     consistent offsets (paper §3.5 example) *)
  let ctx = fresh_ctx () in
  let m1 = I.merge ctx (c 0) (c 1) in
  let m2 = I.merge ctx (c 0) (c 1) in
  let m3 = I.merge ctx (c 5) (c 6) in
  Alcotest.check iv "same component merges identically" m1 m2;
  Alcotest.check iv "same stride, offset 5" (I.add_const 5 m1) m3

let test_merge_different_strides_different_variables () =
  let ctx = fresh_ctx () in
  let m1 = I.merge ctx (c 0) (c 1) in
  let m2 = I.merge ctx (c 0) (c 2) in
  Alcotest.(check bool) "distinct variables" false (I.equal m1 m2)

let test_merge_validation_iteration () =
  (* second loop iteration (paper §3.5): merge (v, v+1) returns v via the
     match substitution, then merging the range bound (v, v+1) again in
     the same context also returns v *)
  let ctx = fresh_ctx () in
  let gen_v = I.merge ctx (c 0) (c 1) in
  ignore gen_v;
  let ctx2 = fresh_ctx () in
  let r1 = I.merge ctx2 v0 (I.add_const 1 v0) in
  Alcotest.check iv "merge (v, v+1) = v" v0 r1;
  let r2 = I.merge ctx2 v0 (I.add_const 1 v0) in
  Alcotest.check iv "consistent second component" v0 r2

let test_merge_inconsistent_substitution_tops () =
  (* μ2(v) fixed by the first component; a second component whose values
     contradict it must go to ⊤ *)
  let ctx = fresh_ctx () in
  let r1 = I.merge ctx v0 (I.add_const 1 v0) in
  Alcotest.check iv "first" v0 r1;
  let r2 = I.merge ctx v0 (I.add_const 2 v0) in
  Alcotest.check iv "inconsistent second" I.top r2

let test_merge_variable_against_constant () =
  (* generalized successor state (v) meeting a stale constant (0): must
     keep v with μ2(v) = 0, not ⊤ (required by the paper's own example) *)
  let ctx = fresh_ctx () in
  Alcotest.check iv "merge (v, 0) = v" v0 (I.merge ctx v0 (c 0));
  (* and a second component with consistent values survives too *)
  Alcotest.check iv "merge (v+3, 3) = v+3" (I.add_const 3 v0)
    (I.merge ctx (I.add_const 3 v0) (c 3))

let test_merge_coefficient_mismatch () =
  let ctx = fresh_ctx () in
  Alcotest.check iv "merge (2v, v) = ⊤" I.top
    (I.merge ctx (I.scale 2 v0) v0)

let test_widen () =
  let ctx = fresh_ctx ~widen:true () in
  Alcotest.check iv "widening merges unequal to ⊤" I.top
    (I.merge ctx (c 0) (c 1));
  Alcotest.check iv "widening keeps equal" (c 3) (I.merge ctx (c 3) (c 3))

let test_merge_flat () =
  Alcotest.check iv "flat equal" c0 (I.merge_flat c0 c0);
  Alcotest.check iv "flat unequal" I.top (I.merge_flat c0 c1)

(* ---- properties -------------------------------------------------------- *)

let prop_add_commutative =
  QCheck2.Test.make ~name:"add commutative" ~count:500
    (QCheck2.Gen.pair Gen.intval Gen.intval) (fun (a, b) ->
      I.equal (I.add a b) (I.add b a))

let prop_add_associative =
  QCheck2.Test.make ~name:"add associative (up to ⊤)" ~count:500
    (QCheck2.Gen.triple Gen.intval Gen.intval Gen.intval) (fun (a, b, c) ->
      (* association order can change where an intermediate two-variable
         sum overflows to ⊤, so equality is only required when neither
         grouping hit ⊤ — both sides remain sound over-approximations *)
      let l = I.add a (I.add b c) in
      let r = I.add (I.add a b) c in
      I.is_top l || I.is_top r || I.equal l r)

let prop_sub_self_zero =
  QCheck2.Test.make ~name:"x - x = 0 (non-top)" ~count:500 Gen.lin_intval
    (fun a -> I.equal (I.sub a a) (I.const 0))

let prop_scale_add_distributes =
  QCheck2.Test.make ~name:"k(a+b) = ka + kb" ~count:500
    (QCheck2.Gen.triple (QCheck2.Gen.int_range (-3) 3) Gen.intval Gen.intval)
    (fun (k, a, b) ->
      I.equal (I.scale k (I.add a b)) (I.add (I.scale k a) (I.scale k b)))

let prop_merge_idempotent =
  QCheck2.Test.make ~name:"merge x x = x" ~count:500 Gen.intval (fun a ->
      let ctx = fresh_ctx () in
      I.equal (I.merge ctx a a) a)

let prop_merge_flat_sound =
  QCheck2.Test.make ~name:"merge_flat is equal-or-top" ~count:500
    (QCheck2.Gen.pair Gen.intval Gen.intval) (fun (a, b) ->
      let m = I.merge_flat a b in
      if I.equal a b then I.equal m a else I.is_top m)

let prop_provably_ge_antisym =
  QCheck2.Test.make ~name:"provably_ge both ways implies equal" ~count:500
    (QCheck2.Gen.pair Gen.lin_intval Gen.lin_intval) (fun (a, b) ->
      if I.provably_ge a b && I.provably_ge b a then I.equal a b else true)

let prop_merge_substitution_covers_inputs =
  (* after merge (c1, c2) of distinct literals, substituting μ1's and μ2's
     recorded values for the invented variable recovers the inputs *)
  QCheck2.Test.make ~name:"invented variable covers both inputs" ~count:200
    (QCheck2.Gen.pair (QCheck2.Gen.int_range (-20) 20)
       (QCheck2.Gen.int_range (-20) 20)) (fun (x, y) ->
      QCheck2.assume (x <> y);
      let ctx = fresh_ctx () in
      match I.merge ctx (c x) (c y) with
      | I.Lin { var = Some (1, v); consts = []; base } ->
          let s1 = I.subst_var (I.of_var_unknown v) ~v ~by:(c (x - base)) in
          let s2 = I.subst_var (I.of_var_unknown v) ~v ~by:(c (y - base)) in
          I.equal (I.add_const base s1) (c x)
          && I.equal (I.add_const base s2) (c y)
      | _ -> false)

let unit_tests =
  [
    ("add consts", test_add_consts);
    ("add symbolic", test_add_symbolic);
    ("two vars is top", test_add_two_vars_is_top);
    ("var cancellation", test_var_cancellation);
    ("scale", test_scale);
    ("mul", test_mul);
    ("div/rem", test_binop_div);
    ("literals and comparisons", test_literals);
    ("substitution", test_subst);
    ("merge equal", test_merge_equal);
    ("merge top", test_merge_top);
    ("merge invents variable", test_merge_two_constants_invents_variable);
    ("merge shares stride variable", test_merge_shares_stride_variable);
    ("different strides", test_merge_different_strides_different_variables);
    ("validation iteration", test_merge_validation_iteration);
    ("inconsistent substitution", test_merge_inconsistent_substitution_tops);
    ("variable against constant", test_merge_variable_against_constant);
    ("coefficient mismatch", test_merge_coefficient_mismatch);
    ("widening", test_widen);
    ("merge_flat", test_merge_flat);
  ]

let tests =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) unit_tests
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_add_commutative;
        prop_add_associative;
        prop_sub_self_zero;
        prop_scale_add_distributes;
        prop_merge_idempotent;
        prop_merge_flat_sound;
        prop_provably_ge_antisym;
        prop_merge_substitution_covers_inputs;
      ]
