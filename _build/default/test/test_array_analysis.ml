(* Targeted tests for the array analysis (paper §3): null ranges, stride
   inference, and the §3.6 safety rules. *)

let compile ?(inline_limit = 100) ?(mode = Satb_core.Analysis.A) src =
  let prog = Jir.Parser.parse_linked src in
  let conf = { Satb_core.Analysis.default_config with mode } in
  Satb_core.Driver.compile ~inline_limit ~conf prog

let elide_flags compiled ~meth =
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      if String.equal r.mr_method meth then
        List.map (fun (v : Satb_core.Analysis.verdict) -> v.v_elide) r.verdicts
      else [])
    compiled.Satb_core.Driver.results

let check name ?mode src ~meth expected =
  Alcotest.(check (list bool)) name expected
    (elide_flags (compile ?mode src) ~meth)

let hdr =
  {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
|}

(* upward in-order fill: the paper's expand example, minus the copy *)
let upward_fill =
  hdr
  ^ {|
class Main
  static ref sink
  method void m (int) locals 2
    iload 0
    anewarray T
    astore 1
    iconst 0
    istore 0
  loop:
    iload 0
    aload 1
    arraylength
    if_icmpge fin
    aload 1
    iload 0
    getstatic Main.sink
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|}

let test_upward_fill_elided () =
  check "upward in-order fill" upward_fill ~meth:"m" [ true ]

let test_downward_fill_elided () =
  (* fills from the top end: the Up_to range contracts downward *)
  check "downward fill"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 2
    iconst 8
    anewarray T
    astore 1
    aload 1
    arraylength
    iconst 1
    isub
    istore 0
  loop:
    iload 0
    iflt fin
    aload 1
    iload 0
    getstatic Main.sink
    aastore
    iinc 0 -1
    goto loop
  fin:
    return
  end
end
|})
    ~meth:"m" [ true ]

let test_stride_two_kept () =
  (* skipping indices: contract loses the range, stores keep barriers *)
  check "stride-2 fill kept"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 2
    iconst 8
    anewarray T
    astore 1
    iconst 0
    istore 0
  loop:
    iload 0
    iconst 8
    if_icmpge fin
    aload 1
    iload 0
    getstatic Main.sink
    aastore
    iinc 0 2
    goto loop
  fin:
    return
  end
end
|})
    ~meth:"m" [ false ]

let test_hashed_index_kept () =
  check "hashed index kept"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 2
    iconst 8
    anewarray T
    astore 1
    iconst 0
    istore 0
  loop:
    iload 0
    iconst 8
    if_icmpge fin
    aload 1
    iload 0
    iconst 5
    imul
    iconst 8
    irem
    getstatic Main.sink
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
end
|})
    ~meth:"m" [ false ]

let test_single_store_at_zero () =
  check "single store at 0"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    iconst 4
    anewarray T
    astore 0
    aload 0
    iconst 0
    getstatic Main.sink
    aastore
    aload 0
    iconst 0
    getstatic Main.sink
    aastore
    return
  end
end
|})
    ~meth:"m" [ true; false ]
(* the second store at index 0 overwrites the first *)

let test_escaped_array_kept () =
  check "escaped array"
    (hdr
   ^ {|
class Main
  static ref arr
  static ref sink
  method void m () locals 1
    iconst 4
    anewarray T
    astore 0
    aload 0
    putstatic Main.arr
    aload 0
    iconst 0
    getstatic Main.sink
    aastore
    return
  end
end
|})
    ~meth:"m" [ false; false ]

let test_bounds_handler_disables_array_elision () =
  (* §3.6 footnote: methods catching bounds exceptions get no array
     elision (but field elision still applies) *)
  check "bounds handler"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 1
  t0:
    iconst 4
    anewarray T
    astore 0
    aload 0
    iconst 0
    getstatic Main.sink
    aastore
  t1:
    return
  h:
    return
    catch bounds t0 t1 h
  end
end
|})
    ~meth:"m" [ false ]

let test_arith_handler_does_not_disable () =
  check "unrelated handler"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 1
  t0:
    iconst 4
    anewarray T
    astore 0
    aload 0
    iconst 0
    getstatic Main.sink
    aastore
  t1:
    return
  h:
    return
    catch arith t0 t1 h
  end
end
|})
    ~meth:"m" [ true ]

let test_mode_f_keeps_array_stores () =
  check "mode F" ~mode:Satb_core.Analysis.F upward_fill ~meth:"m" [ false ]

let test_expand_example_full () =
  (* the paper's §3.1 example end to end: symbolic length 2*c0 *)
  let compiled = compile Workloads.Micro.expand_src in
  Alcotest.(check (list bool)) "expand loop store" [ true ]
    (elide_flags compiled ~meth:"expand")

let test_two_arrays_independent () =
  (* b's null range collapses after a store at an unknown index; a's
     in-order fill is unaffected.  Note the first unknown-index store into
     the *fully null* fresh b elides too — every slot is null. *)
  check "two arrays tracked independently"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m (int) locals 3
    iconst 4
    anewarray T
    astore 1
    iconst 4
    anewarray T
    astore 2
    aload 1
    iconst 0
    getstatic Main.sink
    aastore
    aload 2
    iload 0
    getstatic Main.sink
    aastore
    aload 2
    iload 0
    getstatic Main.sink
    aastore
    aload 1
    iconst 1
    getstatic Main.sink
    aastore
    return
  end
end
|})
    ~meth:"m" [ true; true; false; true ]
(* a[0] elide; b[i] into fully-null b: elide; b[i] again: range lost,
   keep; a[1] continues in order: elide *)

let test_length_via_argument_unknown () =
  (* array length is an opaque constant unknown from an argument array *)
  check "length from argument"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m (ref) locals 3
    aload 0
    arraylength
    anewarray T
    astore 1
    iconst 0
    istore 2
  loop:
    iload 2
    aload 1
    arraylength
    if_icmpge fin
    aload 1
    iload 2
    getstatic Main.sink
    aastore
    iinc 2 1
    goto loop
  fin:
    return
  end
end
|})
    ~meth:"m" [ true ]

let test_aaload_does_not_contract () =
  (* reading elements must not affect the null range *)
  check "aaload neutral"
    (hdr
   ^ {|
class Main
  static ref sink
  method void m () locals 2
    iconst 4
    anewarray T
    astore 0
    aload 0
    iconst 2
    aaload
    pop
    aload 0
    iconst 0
    getstatic Main.sink
    aastore
    return
  end
end
|})
    ~meth:"m" [ true ]

let test_int_array_stores_have_no_barrier () =
  let compiled =
    compile
      (hdr
     ^ {|
class Main
  method void m () locals 1
    iconst 4
    inewarray
    astore 0
    aload 0
    iconst 0
    iconst 7
    iastore
    return
  end
end
|})
  in
  Alcotest.(check (list bool)) "no ref-store sites" []
    (elide_flags compiled ~meth:"m")

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("upward fill elided", test_upward_fill_elided);
      ("downward fill elided", test_downward_fill_elided);
      ("stride-2 kept", test_stride_two_kept);
      ("hashed index kept", test_hashed_index_kept);
      ("store at 0 then overwrite", test_single_store_at_zero);
      ("escaped array kept", test_escaped_array_kept);
      ("bounds handler disables", test_bounds_handler_disables_array_elision);
      ("unrelated handler neutral", test_arith_handler_does_not_disable);
      ("mode F keeps arrays", test_mode_f_keeps_array_stores);
      ("paper expand example", test_expand_example_full);
      ("two arrays independent", test_two_arrays_independent);
      ("length via argument unknown", test_length_via_argument_unknown);
      ("aaload neutral", test_aaload_does_not_contract);
      ("int arrays barrier-free", test_int_array_stores_have_no_barrier);
    ]
