(* Basic-block construction tests. *)

open Jir.Types

let build_meth body f =
  Jir.Builder.meth "m" ~params:[] ~locals:4 (fun b ->
      f b;
      ignore body)

let simple_loop =
  Jir.Builder.meth "m" ~params:[] ~locals:2 (fun b ->
      let e = Jir.Builder.emit b in
      e (Iconst 5);
      e (Istore 0);
      Jir.Builder.label b "head";
      e (Iload 0);
      e (If_i (Le, "out"));
      e (Iinc (0, -1));
      e (Goto "head");
      Jir.Builder.label b "out";
      e Return)

let test_loop_blocks () =
  let cfg = Jir.Cfg.build simple_loop in
  (* blocks: [entry], [head..branch], [body], [out] *)
  Alcotest.(check int) "4 blocks" 4 (Jir.Cfg.n_blocks cfg);
  let b0 = Jir.Cfg.block cfg 0 in
  let b1 = Jir.Cfg.block cfg 1 in
  let b2 = Jir.Cfg.block cfg 2 in
  let b3 = Jir.Cfg.block cfg 3 in
  Alcotest.(check (list int)) "entry falls into head" [ 1 ] b0.succs;
  Alcotest.(check (list int)) "head branches to body and out"
    [ 2; 3 ] b1.succs;
  Alcotest.(check (list int)) "body loops to head" [ 1 ] b2.succs;
  Alcotest.(check (list int)) "out is terminal" [] b3.succs

let test_block_of_pc_total () =
  let cfg = Jir.Cfg.build simple_loop in
  Array.iteri
    (fun pc id ->
      let b = Jir.Cfg.block cfg id in
      Alcotest.(check bool)
        (Printf.sprintf "pc %d inside its block" pc)
        true
        (pc >= b.start_pc && pc < b.end_pc))
    cfg.block_of_pc

let test_instrs_slice () =
  let cfg = Jir.Cfg.build simple_loop in
  let total =
    Array.to_list cfg.blocks
    |> List.map (fun b -> Array.length (Jir.Cfg.instrs cfg b))
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "blocks partition the code"
    (Array.length simple_loop.code)
    total

let test_reverse_postorder () =
  let cfg = Jir.Cfg.build simple_loop in
  let order = Jir.Cfg.reverse_postorder cfg in
  Alcotest.(check int) "entry first" 0 (List.hd order);
  Alcotest.(check int) "all reachable blocks present" 4 (List.length order)

let with_handler =
  Jir.Builder.meth "m" ~params:[] ~locals:1 (fun b ->
      let e = Jir.Builder.emit b in
      Jir.Builder.label b "t0";
      e (Iconst 1);
      e (Iconst 0);
      e (Ibin Div);
      e Pop;
      Jir.Builder.label b "t1";
      e Return;
      Jir.Builder.label b "h";
      e Return;
      Jir.Builder.handler b ~from_lbl:"t0" ~to_lbl:"t1" ~target_lbl:"h" Arith)

let test_handler_edges () =
  let cfg = Jir.Cfg.build with_handler in
  let covered = Jir.Cfg.block cfg 0 in
  Alcotest.(check bool) "protected block has a handler successor" true
    (List.exists (fun (_, k) -> k = Arith) covered.handler_succs);
  (* the handler target is a block leader *)
  let handler_block_ids = List.map fst covered.handler_succs in
  List.iter
    (fun id ->
      let b = Jir.Cfg.block cfg id in
      Alcotest.(check bool) "handler starts a block" true (b.start_pc >= 0))
    handler_block_ids

let test_straight_line_single_block () =
  let m =
    Jir.Builder.meth "m" ~params:[] ~locals:1 (fun b ->
        let e = Jir.Builder.emit b in
        e (Iconst 1);
        e (Istore 0);
        e (Iload 0);
        e Pop;
        e Return)
  in
  let cfg = Jir.Cfg.build m in
  Alcotest.(check int) "one block" 1 (Jir.Cfg.n_blocks cfg)

let prop_blocks_partition =
  QCheck2.Test.make ~name:"blocks partition generated methods" ~count:200
    Gen.gen_program (fun p ->
      List.for_all
        (fun (c : cls) ->
          List.for_all
            (fun (m : meth) ->
              let cfg = Jir.Cfg.build m in
              let n = Array.length m.code in
              (* every pc belongs to exactly one block, blocks are
                 contiguous and non-overlapping *)
              Array.length cfg.block_of_pc = n
              && Array.for_all (fun id -> id >= 0) cfg.block_of_pc
              && Array.to_list cfg.blocks
                 |> List.for_all (fun (b : Jir.Cfg.block) ->
                        b.start_pc < b.end_pc && b.end_pc <= n))
            c.methods)
        p.classes)

let prop_succs_are_leaders =
  QCheck2.Test.make ~name:"successors are block starts" ~count:200
    Gen.gen_program (fun p ->
      List.for_all
        (fun (c : cls) ->
          List.for_all
            (fun (m : meth) ->
              let cfg = Jir.Cfg.build m in
              Array.to_list cfg.blocks
              |> List.for_all (fun (b : Jir.Cfg.block) ->
                     List.for_all
                       (fun s ->
                         let sb = Jir.Cfg.block cfg s in
                         cfg.block_of_pc.(sb.start_pc) = s)
                       b.succs))
            c.methods)
        p.classes)

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("loop blocks", test_loop_blocks);
      ("block_of_pc total", test_block_of_pc_total);
      ("instrs slice", test_instrs_slice);
      ("reverse postorder", test_reverse_postorder);
      ("handler edges", test_handler_edges);
      ("straight line", test_straight_line_single_block);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_blocks_partition; prop_succs_are_leaders ]
