test/test_interp.ml: Alcotest Hashtbl Jir Jrt List String
