test/test_movedown.ml: Alcotest Float Harness Jir Jrt List Printf QCheck2 QCheck_alcotest Satb_core String Workloads
