test/test_differential.ml: Hashtbl Jir Jrt Jsrc List Printf QCheck2 QCheck_alcotest
