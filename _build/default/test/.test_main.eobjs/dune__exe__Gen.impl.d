test/gen.ml: Jir List QCheck2 Satb_core
