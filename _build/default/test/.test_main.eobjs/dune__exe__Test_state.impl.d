test/test_state.ml: Alcotest Array Gen List QCheck2 QCheck_alcotest Satb_core
