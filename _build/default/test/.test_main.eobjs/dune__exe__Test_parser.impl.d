test/test_parser.ml: Alcotest Gen Jir List Printf QCheck2 QCheck_alcotest String Workloads
