test/test_gc_edges.ml: Alcotest Array Jrt List
