test/test_soundness.ml: Alcotest Harness Jrt List Printf QCheck2 QCheck_alcotest Workloads
