test/test_smoke.ml: Alcotest Fmt Jir Jrt Satb_core
