test/test_harness.ml: Alcotest Float Harness List Printf Satb_core String Workloads
