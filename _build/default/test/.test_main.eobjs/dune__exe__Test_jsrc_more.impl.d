test/test_jsrc_more.ml: Alcotest Hashtbl Jir Jrt Jsrc List
