test/test_runtime_units.ml: Alcotest Array Jir Jrt List
