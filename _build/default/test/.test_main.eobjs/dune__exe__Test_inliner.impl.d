test/test_inliner.ml: Alcotest Array Gen Hashtbl Jir Jrt List Printf QCheck2 QCheck_alcotest Satb_core Workloads
