test/test_field_analysis.ml: Alcotest Jir List Satb_core String Workloads
