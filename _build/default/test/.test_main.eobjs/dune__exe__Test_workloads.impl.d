test/test_workloads.ml: Alcotest Float Harness List Printf Workloads
