test/test_analysis_fuzz.ml: Alcotest Gen Hashtbl Jir Jrt List QCheck2 QCheck_alcotest Satb_core Workloads
