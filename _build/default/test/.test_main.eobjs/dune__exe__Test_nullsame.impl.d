test/test_nullsame.ml: Alcotest Harness Jir Jrt List Satb_core String Workloads
