test/test_jsrc.ml: Alcotest Hashtbl Jir Jrt Jsrc List Satb_core String
