test/test_intrange.ml: Alcotest Fun Gen List QCheck2 QCheck_alcotest Satb_core
