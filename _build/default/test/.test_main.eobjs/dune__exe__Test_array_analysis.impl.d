test/test_array_analysis.ml: Alcotest Jir List Satb_core String Workloads
