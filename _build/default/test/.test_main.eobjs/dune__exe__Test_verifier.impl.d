test/test_verifier.ml: Alcotest Fmt Jir List Printf String Workloads
