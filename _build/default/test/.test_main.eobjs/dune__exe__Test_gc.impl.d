test/test_gc.ml: Alcotest Harness Jir Jrt List Printf Satb_core Workloads
