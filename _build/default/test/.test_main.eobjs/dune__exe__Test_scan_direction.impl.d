test/test_scan_direction.ml: Alcotest Jir Jrt Lazy List Satb_core
