test/test_cfg.ml: Alcotest Array Gen Jir List Printf QCheck2 QCheck_alcotest
