test/test_intval.ml: Alcotest Gen Jir List QCheck2 QCheck_alcotest Satb_core
