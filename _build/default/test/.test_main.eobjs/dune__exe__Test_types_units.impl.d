test/test_types_units.ml: Alcotest Harness Jir List String
