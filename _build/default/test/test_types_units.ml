(* Unit tests for the small pure helpers: Jir.Types classification
   functions and the harness table formatter. *)

open Jir.Types

let test_targets_and_terminal () =
  Alcotest.(check (list int)) "goto target" [ 7 ] (targets (Goto 7));
  Alcotest.(check (list int)) "branch target" [ 3 ]
    (targets (If_icmp (Lt, 3)));
  Alcotest.(check (list int)) "store no target" [] (targets (Istore 1));
  Alcotest.(check bool) "goto terminal" true (is_terminal (Goto 0));
  Alcotest.(check bool) "return terminal" true (is_terminal Return);
  Alcotest.(check bool) "areturn terminal" true (is_terminal Areturn);
  Alcotest.(check bool) "branch falls through" false
    (is_terminal (If_i (Eq, 0)));
  Alcotest.(check bool) "invoke falls through" false
    (is_terminal (Invoke { mclass = "C"; mname = "m" }))

let test_map_label () =
  let shift = map_label (fun l -> l + 10) in
  Alcotest.(check bool) "goto shifted" true (shift (Goto 1) = Goto 11);
  Alcotest.(check bool) "cond shifted" true
    (shift (If_null 2) = If_null 12);
  Alcotest.(check bool) "non-branch untouched" true
    (shift (Iconst 5) = Iconst 5)

let test_eval_cond () =
  Alcotest.(check bool) "lt" true (eval_cond Lt 1 2);
  Alcotest.(check bool) "ge" true (eval_cond Ge 2 2);
  Alcotest.(check bool) "ne" false (eval_cond Ne 3 3);
  Alcotest.(check bool) "gt" false (eval_cond Gt 1 2);
  Alcotest.(check bool) "le" true (eval_cond Le 1 2);
  Alcotest.(check bool) "eq" true (eval_cond Eq 0 0)

let test_cond_string_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "round-trip" true
        (cond_of_string (string_of_cond c) = Some c))
    [ Eq; Ne; Lt; Ge; Gt; Le ];
  Alcotest.(check bool) "unknown" true (cond_of_string "zz" = None)

let test_store_kinds () =
  let fr = { fclass = "C"; fname = "f" } in
  Alcotest.(check bool) "putfield" true
    (store_kind_of_instr (Putfield fr) = Some Field_store);
  Alcotest.(check bool) "putstatic" true
    (store_kind_of_instr (Putstatic fr) = Some Static_store);
  Alcotest.(check bool) "aastore" true
    (store_kind_of_instr Aastore = Some Array_store);
  Alcotest.(check bool) "iastore none" true
    (store_kind_of_instr Iastore = None)

let test_tablefmt () =
  let s =
    Harness.Tablefmt.render
      ~header:[ "name"; "n" ]
      ~align:[ Harness.Tablefmt.L; Harness.Tablefmt.R ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check (list string)) "layout"
    [ "name    n"; "-----  --"; "alpha   1"; "b      22" ]
    (String.split_on_char '\n' s);
  Alcotest.(check string) "pct" "50.0" (Harness.Tablefmt.pct 1 2);
  Alcotest.(check string) "pct zero denom" "-" (Harness.Tablefmt.pct 1 0)

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("targets + terminal", test_targets_and_terminal);
      ("map_label", test_map_label);
      ("eval_cond", test_eval_cond);
      ("cond strings", test_cond_string_roundtrip);
      ("store kinds", test_store_kinds);
      ("tablefmt", test_tablefmt);
    ]
