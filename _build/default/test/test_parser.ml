(* Lexer/parser/pretty-printer tests, including the pp∘parse round-trip
   on handwritten sources, every workload, and generated programs. *)

let tokens_of src =
  List.map (fun (l : Jir.Lexer.line) -> l.tokens) (Jir.Lexer.tokenize src)

let test_lexer_comments_and_blanks () =
  let src = "  a b ; comment\n\n# whole line\n\tc\td  ;x\n" in
  Alcotest.(check (list (list string)))
    "tokens" [ [ "a"; "b" ]; [ "c"; "d" ] ] (tokens_of src)

let test_lexer_line_numbers () =
  let lines = Jir.Lexer.tokenize "a\n\nb\n" in
  Alcotest.(check (list int)) "line numbers" [ 1; 3 ]
    (List.map (fun (l : Jir.Lexer.line) -> l.lineno) lines)

let parse_err src =
  match Jir.Parser.parse_program src with
  | _ -> None
  | exception Jir.Parser.Parse_error { lineno; message } ->
      Some (lineno, message)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let check_err name src frag =
  match parse_err src with
  | Some (_, msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S (got %S)" name frag msg)
        true (contains msg frag)
  | None -> Alcotest.failf "%s: expected a parse error" name

let test_parse_errors () =
  check_err "top-level junk" "foo bar\n" "expected 'class";
  check_err "bad field type" "class C\n field float x\nend\n" "expected type";
  check_err "unknown instruction"
    "class C\n method void m () locals 0\n frobnicate\n end\nend\n"
    "unknown instruction";
  check_err "missing end"
    "class C\n method void m () locals 0\n return\n" "missing end";
  check_err "undefined label"
    "class C\n method void m () locals 0\n goto nowhere\n return\n end\nend\n"
    "undefined label";
  check_err "duplicate label"
    "class C\n method void m () locals 0\n l:\n l:\n return\n end\nend\n"
    "duplicate label";
  check_err "bad catch"
    "class C\n method void m () locals 0\n catch weird a b c\n return\n end\nend\n"
    "unknown exception kind";
  check_err "bad member ref"
    "class C\n method void m () locals 0\n getstatic nodot\n return\n end\nend\n"
    "expected Class.member"

let test_parse_header_variants () =
  (* parens attached or separated both parse *)
  let p1 =
    Jir.Parser.parse_program
      "class C\n method int m (int ref) locals 2\n iconst 0\n ireturn\n end\nend\n"
  in
  let p2 =
    Jir.Parser.parse_program
      "class C\n method int m ( int ref ) locals 2\n iconst 0\n ireturn\n end\nend\n"
  in
  Alcotest.(check string) "same program"
    (Jir.Pp.program_to_string p1)
    (Jir.Pp.program_to_string p2)

let test_parse_ctor_flag () =
  let p =
    Jir.Parser.parse_program
      "class C\n method void <init> (ref) locals 1 ctor\n return\n end\nend\n"
  in
  match p.classes with
  | [ { methods = [ m ]; _ } ] ->
      Alcotest.(check bool) "ctor" true m.is_constructor
  | _ -> Alcotest.fail "expected one method"

let test_handlers_roundtrip () =
  let src =
    "class C\n\
     method void m () locals 1\n\
     t0:\n\
     iconst 1\n\
     iconst 0\n\
     idiv\n\
     pop\n\
     t1:\n\
     return\n\
     h:\n\
     return\n\
     catch arith t0 t1 h\n\
     end\n\
     end\n"
  in
  let p = Jir.Parser.parse_program src in
  let printed = Jir.Pp.program_to_string p in
  let p2 = Jir.Parser.parse_program printed in
  (match (List.hd p.classes).methods with
  | [ m ] -> (
      match m.handlers with
      | [ h ] ->
          Alcotest.(check int) "from" 0 h.from_pc;
          Alcotest.(check int) "to" 4 h.to_pc;
          Alcotest.(check int) "target" 5 h.target
      | _ -> Alcotest.fail "expected one handler")
  | _ -> Alcotest.fail "expected one method");
  Alcotest.(check string) "handler round-trip" printed
    (Jir.Pp.program_to_string p2)

let roundtrip_fixpoint name src =
  let p1 = Jir.Parser.parse_program src in
  let s1 = Jir.Pp.program_to_string p1 in
  let p2 = Jir.Parser.parse_program s1 in
  let s2 = Jir.Pp.program_to_string p2 in
  Alcotest.(check string) (name ^ " round-trip") s1 s2

let test_workloads_roundtrip () =
  List.iter
    (fun (w : Workloads.Spec.t) -> roundtrip_fixpoint w.name w.src)
    Workloads.Registry.all

let test_every_mnemonic_roundtrips () =
  (* one program exercising every instruction form *)
  let src =
    "class C\n\
     field ref r\n\
     field int i\n\
     static ref s\n\
     method void <init> (ref) locals 1 ctor\n\
     return\n\
     end\n\
     method int callee (int) locals 1\n\
     iload 0\n\
     ireturn\n\
     end\n\
     method void spawned (ref) locals 1\n\
     return\n\
     end\n\
     method ref m (ref int) locals 6\n\
     iconst 42\n\
     istore 1\n\
     aconst_null\n\
     astore 2\n\
     iload 1\n\
     iload 1\n\
     iadd\n\
     iload 1\n\
     isub\n\
     iload 1\n\
     imul\n\
     iconst 3\n\
     idiv\n\
     iconst 2\n\
     irem\n\
     ineg\n\
     istore 1\n\
     iinc 1 -7\n\
     new C\n\
     dup\n\
     invoke C.<init>\n\
     astore 3\n\
     aload 3\n\
     aload 3\n\
     putfield C.r\n\
     aload 3\n\
     getfield C.r\n\
     pop\n\
     aload 3\n\
     iload 1\n\
     putfield C.i\n\
     aload 3\n\
     getfield C.i\n\
     pop\n\
     getstatic C.s\n\
     putstatic C.s\n\
     iconst 4\n\
     anewarray C\n\
     astore 4\n\
     aload 4\n\
     arraylength\n\
     pop\n\
     aload 4\n\
     iconst 0\n\
     aload 3\n\
     aastore\n\
     aload 4\n\
     iconst 0\n\
     aaload\n\
     pop\n\
     iconst 5\n\
     inewarray\n\
     astore 5\n\
     aload 5\n\
     iconst 1\n\
     iconst 9\n\
     iastore\n\
     aload 5\n\
     iconst 1\n\
     iaload\n\
     pop\n\
     iload 1\n\
     invoke C.callee\n\
     pop\n\
     aload 3\n\
     spawn C.spawned\n\
     aload 3\n\
     aload 2\n\
     swap\n\
     pop\n\
     l1:\n\
     iload 1\n\
     ifeq l2\n\
     iload 1\n\
     ifne l2\n\
     iload 1\n\
     iflt l2\n\
     iload 1\n\
     ifge l2\n\
     iload 1\n\
     ifgt l2\n\
     iload 1\n\
     ifle l2\n\
     iload 1\n\
     iload 1\n\
     if_icmpeq l2\n\
     iload 1\n\
     iload 1\n\
     if_icmpne l2\n\
     iload 1\n\
     iload 1\n\
     if_icmplt l2\n\
     iload 1\n\
     iload 1\n\
     if_icmpge l2\n\
     iload 1\n\
     iload 1\n\
     if_icmpgt l2\n\
     iload 1\n\
     iload 1\n\
     if_icmple l2\n\
     aload 2\n\
     ifnull l2\n\
     aload 2\n\
     ifnonnull l2\n\
     aload 2\n\
     aload 3\n\
     if_acmpeq l2\n\
     aload 2\n\
     aload 3\n\
     if_acmpne l2\n\
     goto l1\n\
     l2:\n\
     aload 2\n\
     areturn\n\
     end\n\
     end\n"
  in
  let prog = Jir.Parser.parse_linked src in
  Jir.Verifier.verify_exn prog;
  roundtrip_fixpoint "all mnemonics" src

let prop_generated_roundtrip =
  QCheck2.Test.make ~name:"generated programs round-trip" ~count:200
    Gen.gen_program (fun p ->
      let s1 = Jir.Pp.program_to_string p in
      let p2 = Jir.Parser.parse_program s1 in
      let s2 = Jir.Pp.program_to_string p2 in
      s1 = s2)

let prop_generated_verify =
  QCheck2.Test.make ~name:"generated programs verify" ~count:200
    Gen.gen_program (fun p ->
      match Jir.Verifier.verify_program (Jir.Program.of_program p) with
      | Ok () -> true
      | Error _ -> false)

let unit_tests =
  [
    ("lexer comments/blanks", test_lexer_comments_and_blanks);
    ("lexer line numbers", test_lexer_line_numbers);
    ("parse errors", test_parse_errors);
    ("header variants", test_parse_header_variants);
    ("ctor flag", test_parse_ctor_flag);
    ("handlers round-trip", test_handlers_roundtrip);
    ("workloads round-trip", test_workloads_roundtrip);
    ("every mnemonic round-trips", test_every_mnemonic_roundtrips);
  ]

let tests =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) unit_tests
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_generated_roundtrip; prop_generated_verify ]
