(* Tests for the null-or-same extension (paper §4.3, here implemented). *)

let compile ?(null_or_same = true) src =
  let prog = Jir.Parser.parse_linked src in
  let conf =
    { Satb_core.Analysis.default_config with null_or_same }
  in
  Satb_core.Driver.compile ~inline_limit:100 ~conf prog

let flags compiled ~meth =
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      if String.equal r.mr_method meth then
        List.map (fun (v : Satb_core.Analysis.verdict) -> v.v_elide) r.verdicts
      else [])
    compiled.Satb_core.Driver.results

let hdr =
  {|
class T
  field ref f
  field ref g
  method void <init> (ref) locals 1 ctor
    return
  end
end
|}

(* the memoization idiom: t = o.f; if (t == null) t = fallback; o.f = t *)
let memo_src =
  hdr
  ^ {|
class Main
  static ref seed
  method void m () locals 3
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.seed
    putfield T.f
    aload 0
    getfield T.f
    astore 1
    aload 1
    ifnonnull store
    getstatic Main.seed
    astore 1
  store:
    aload 0
    aload 1
    putfield T.f
    return
  end
end
|}

let test_memo_idiom_elided_with_flag () =
  (* first store: pre-null init; final store: null-or-same *)
  Alcotest.(check (list bool)) "with extension" [ true; true ]
    (flags (compile memo_src) ~meth:"m")

let test_memo_idiom_kept_without_flag () =
  Alcotest.(check (list bool)) "without extension" [ true; false ]
    (flags (compile ~null_or_same:false memo_src) ~meth:"m")

let test_write_back_same_value () =
  (* plain o.f = o.f rewrite, no branch *)
  let src =
    hdr
    ^ {|
class Main
  static ref seed
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.seed
    putfield T.f
    aload 0
    aload 0
    getfield T.f
    putfield T.f
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "write-back elided" [ true; true ]
    (flags (compile src) ~meth:"m")

let test_fact_killed_by_intervening_store () =
  (* o.f is overwritten between the load and the write-back: the loaded
     value no longer matches the content, the barrier stays *)
  let src =
    hdr
    ^ {|
class Main
  static ref seed
  method void m () locals 2
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.seed
    putfield T.f
    aload 0
    getfield T.f
    astore 1
    aload 0
    getstatic Main.seed
    putfield T.f
    aload 0
    aload 1
    putfield T.f
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "stale fact dies" [ true; false; false ]
    (flags (compile src) ~meth:"m")

let test_fact_scoped_to_field () =
  (* value loaded from f and written to g: not same-field, kept *)
  let src =
    hdr
    ^ {|
class Main
  static ref seed
  method void m () locals 2
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.seed
    putfield T.f
    aload 0
    getstatic Main.seed
    putfield T.g
    aload 0
    aload 0
    getfield T.f
    putfield T.g
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "wrong field kept" [ true; true; false ]
    (flags (compile src) ~meth:"m")

let test_escaped_receiver_not_elided () =
  (* §4.3: unsynchronized multi-mutator writes invalidate the reasoning,
     so it only applies to thread-local receivers *)
  let src =
    hdr
    ^ {|
class Main
  static ref seed
  static ref sink
  method void m () locals 2
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    putstatic Main.sink
    aload 0
    aload 0
    getfield T.f
    putfield T.f
    return
  end
end
|}
  in
  Alcotest.(check (list bool)) "escaped receiver kept" [ false; false ]
    (flags (compile src) ~meth:"m")

let test_soundness_under_satb () =
  (* run the memoization workload sites under SATB with elision: no
     snapshot violations *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let cw = Harness.Exp.compile ~null_or_same:true w in
      let r =
        Harness.Exp.run
          ~gc:(Jrt.Runner.make_satb ~trigger_allocs:24 ~steps_per_increment:8 ())
          cw
      in
      match r.gc with
      | Some g ->
          Alcotest.(check int) (w.name ^ " violations") 0 g.total_violations
      | None -> Alcotest.fail "expected gc summary")
    Workloads.Registry.table1

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("memo idiom elided", test_memo_idiom_elided_with_flag);
      ("memo idiom kept without flag", test_memo_idiom_kept_without_flag);
      ("write-back same value", test_write_back_same_value);
      ("intervening store kills fact", test_fact_killed_by_intervening_store);
      ("fact scoped to field", test_fact_scoped_to_field);
      ("escaped receiver kept", test_escaped_receiver_not_elided);
      ("sound under SATB", test_soundness_under_satb);
    ]
