(* Collector edge cases exercised directly on hand-built heaps — no
   interpreter in the loop. *)

module H = Jrt.Heap
module S = Jrt.Satb_gc
module I = Jrt.Incr_gc

let mk_chain heap n =
  (* a linked chain of n objects; returns (head, all ids) *)
  let objs = List.init n (fun _ -> H.alloc_object heap "C" ~n_fields:1) in
  let rec link = function
    | a :: (b :: _ as rest) ->
        (match a.H.payload with
        | H.Fields fs -> fs.(0) <- Jrt.Value.Ref b.H.id
        | _ -> assert false);
        link rest
    | _ -> ()
  in
  link objs;
  (List.hd objs, List.map (fun o -> o.H.id) objs)

let test_satb_basic_cycle () =
  let heap = H.create () in
  let head, ids = mk_chain heap 10 in
  let garbage = H.alloc_object heap "C" ~n_fields:0 in
  let gc = S.create ~steps_per_increment:2 heap ~roots:(fun () -> [ head.H.id ]) in
  S.start_cycle gc;
  while not (S.quiescent gc) do
    S.step gc
  done;
  let r = S.finish_cycle gc in
  Alcotest.(check int) "snapshot = chain" (List.length ids) r.snapshot_size;
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check int) "garbage swept" 1 r.swept;
  Alcotest.(check bool) "garbage dead" true garbage.H.dead;
  List.iter
    (fun id ->
      Alcotest.(check bool) "chain live" false (H.get heap id).H.dead)
    ids

let test_satb_buffer_capacity_and_remnant () =
  (* log fewer entries than the buffer capacity: the concurrent phase
     never sees them; the remark pause drains them *)
  let heap = H.create () in
  let head, _ = mk_chain heap 3 in
  let hidden = H.alloc_object heap "C" ~n_fields:0 in
  (* hidden reachable only via head.f0 *)
  (match head.H.payload with
  | H.Fields fs -> fs.(0) <- Jrt.Value.Ref hidden.H.id
  | _ -> assert false);
  let gc =
    S.create ~steps_per_increment:100 ~buffer_capacity:32 heap
      ~roots:(fun () -> [ head.H.id ])
  in
  S.start_cycle gc;
  (* the mutator overwrites head.f0 before the collector scans it...
     actually start_cycle grays the root immediately; to exercise the
     buffer we log a pre-value explicitly *)
  S.log_ref_store gc ~obj:head.H.id ~pre:(Jrt.Value.Ref hidden.H.id);
  (match head.H.payload with
  | H.Fields fs -> fs.(0) <- Jrt.Value.Null
  | _ -> assert false);
  while not (S.quiescent gc) do
    S.step gc
  done;
  (* quiescent although the local buffer still holds the logged entry *)
  Alcotest.(check int) "entry still local" 1 gc.S.local_count;
  let r = S.finish_cycle gc in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check bool) "remark did the work" true (r.final_pause_work >= 1);
  Alcotest.(check bool) "hidden survived via the log" false hidden.H.dead

let test_satb_buffer_handoff_when_full () =
  let heap = H.create () in
  let head, _ = mk_chain heap 2 in
  let gc =
    S.create ~steps_per_increment:1 ~buffer_capacity:4 heap
      ~roots:(fun () -> [ head.H.id ])
  in
  S.start_cycle gc;
  for _ = 1 to 4 do
    S.log_ref_store gc ~obj:head.H.id ~pre:(Jrt.Value.Ref head.H.id)
  done;
  (* capacity reached: the buffer was handed to the collector *)
  Alcotest.(check int) "local buffer empty after handoff" 0 gc.S.local_count;
  Alcotest.(check bool) "collector sees entries" true (gc.S.satb_buffer <> []);
  ignore (S.finish_cycle gc)

let test_satb_chunked_scan_of_large_array () =
  let heap = H.create () in
  let arr = H.alloc_ref_array heap "C" ~len:64 in
  let elems = List.init 64 (fun _ -> H.alloc_object heap "C" ~n_fields:0) in
  (match arr.H.payload with
  | H.Ref_array es ->
      List.iteri (fun i o -> es.(i) <- Jrt.Value.Ref o.H.id) elems
  | _ -> assert false);
  let gc =
    S.create ~steps_per_increment:1 ~array_chunk:4 heap
      ~roots:(fun () -> [ arr.H.id ])
  in
  S.start_cycle gc;
  let increments = ref 0 in
  while not (S.quiescent gc) do
    S.step gc;
    incr increments
  done;
  let r = S.finish_cycle gc in
  Alcotest.(check int) "all 65 marked" 65 r.marked;
  Alcotest.(check int) "no violations" 0 r.violations;
  (* 64 slots at 4 per chunk means many increments, proving chunking *)
  Alcotest.(check bool) "scan was incremental" true (!increments >= 8)

let test_satb_empty_and_tiny_arrays () =
  let heap = H.create () in
  let empty = H.alloc_ref_array heap "C" ~len:0 in
  let one = H.alloc_ref_array heap "C" ~len:1 in
  let o = H.alloc_object heap "C" ~n_fields:0 in
  (match one.H.payload with
  | H.Ref_array es -> es.(0) <- Jrt.Value.Ref o.H.id
  | _ -> assert false);
  let gc =
    S.create ~steps_per_increment:1 ~array_chunk:1 heap
      ~roots:(fun () -> [ empty.H.id; one.H.id ])
  in
  S.start_cycle gc;
  while not (S.quiescent gc) do
    S.step gc
  done;
  let r = S.finish_cycle gc in
  Alcotest.(check int) "three objects marked" 3 r.marked;
  Alcotest.(check int) "no violations" 0 r.violations

let test_satb_allocate_black_not_swept () =
  let heap = H.create () in
  let head, _ = mk_chain heap 2 in
  let gc = S.create heap ~roots:(fun () -> [ head.H.id ]) in
  S.start_cycle gc;
  let newborn = H.alloc_object heap "C" ~n_fields:0 in
  S.on_alloc gc newborn;
  Alcotest.(check bool) "allocated black" true newborn.H.marked;
  let r = S.finish_cycle gc in
  Alcotest.(check int) "nothing swept" 0 r.swept;
  Alcotest.(check bool) "newborn alive despite being unreachable" false
    newborn.H.dead

let test_incr_new_objects_traced_in_pause () =
  (* incremental update allocates white: a new object published into a
     marked root object must be found by the final pause *)
  let heap = H.create () in
  let head, _ = mk_chain heap 2 in
  let gc = I.create ~steps_per_increment:100 heap ~roots:(fun () -> [ head.H.id ]) in
  I.start_cycle gc;
  I.step gc;
  (* collector believes it is done *)
  Alcotest.(check bool) "quiescent" true (I.quiescent gc);
  let newborn = H.alloc_object heap "C" ~n_fields:0 in
  I.on_alloc gc newborn;
  Alcotest.(check bool) "allocated white" false newborn.H.marked;
  (match head.H.payload with
  | H.Fields fs -> fs.(0) <- Jrt.Value.Ref newborn.H.id
  | _ -> assert false);
  I.log_ref_store gc ~obj:head.H.id ~pre:Jrt.Value.Null;
  let r = I.finish_cycle gc in
  Alcotest.(check int) "no violations" 0 r.violations;
  (* marks are cleared by finish_cycle; survival of the sweep is the
     observable proof the dirty card led the pause to the newborn *)
  Alcotest.(check bool) "newborn found via dirty card" false newborn.H.dead;
  Alcotest.(check bool) "pause did real work" true (r.final_pause_work > 0)

let test_incr_unlogged_store_is_missed () =
  (* the card barrier is load-bearing: the same scenario without the log
     loses the new object (and the oracle catches it) *)
  let heap = H.create () in
  let head, _ = mk_chain heap 2 in
  let gc = I.create ~steps_per_increment:100 ~sweep:false heap ~roots:(fun () -> [ head.H.id ]) in
  I.start_cycle gc;
  I.step gc;
  let newborn = H.alloc_object heap "C" ~n_fields:0 in
  I.on_alloc gc newborn;
  (match head.H.payload with
  | H.Fields fs -> fs.(0) <- Jrt.Value.Ref newborn.H.id
  | _ -> assert false);
  (* no log_ref_store call: simulates a wrongly elided card mark; the
     root rescan does not help because head is already marked *)
  let r = I.finish_cycle gc in
  Alcotest.(check bool) "violation detected" true (r.violations > 0)

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("satb basic cycle", test_satb_basic_cycle);
      ("satb buffer remnant", test_satb_buffer_capacity_and_remnant);
      ("satb buffer handoff", test_satb_buffer_handoff_when_full);
      ("satb chunked array scan", test_satb_chunked_scan_of_large_array);
      ("satb tiny arrays", test_satb_empty_and_tiny_arrays);
      ("satb allocate black", test_satb_allocate_black_not_swept);
      ("incr new object via card", test_incr_new_objects_traced_in_pause);
      ("incr unlogged store missed", test_incr_unlogged_store_is_missed);
    ]
