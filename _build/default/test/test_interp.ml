(* Interpreter tests: arithmetic, control flow, heap, calls, threads,
   exceptions. *)

let run ?(entry = "Main.main") ?(policy = Jrt.Interp.keep_all_policy) src =
  let prog = Jir.Parser.parse_linked src in
  Jir.Verifier.verify_exn prog;
  let entry_ref =
    match String.split_on_char '.' entry with
    | [ c; m ] -> { Jir.Types.mclass = c; mname = m }
    | _ -> failwith "bad entry"
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  Jrt.Runner.run ~cfg prog ~entry:entry_ref

(* the result cell: tests write an int into Main.out *)
let out_static (r : Jrt.Runner.report) =
  match Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out") with
  | Some (Jrt.Value.Int n) -> n
  | Some v -> Alcotest.failf "Main.out holds %a" Jrt.Value.pp v
  | None -> Alcotest.fail "no Main.out static"

let check_out name src expected =
  let r = run src in
  Alcotest.(check (list (pair int string))) (name ^ " thread errors") []
    r.thread_errors;
  Alcotest.(check int) name expected (out_static r)

let test_arith () =
  check_out "((10-3)*4+6)/2 rem 5"
    {|
class Main
  static int out
  method void main () locals 0
    iconst 10
    iconst 3
    isub
    iconst 4
    imul
    iconst 6
    iadd
    iconst 2
    idiv
    iconst 5
    irem
    putstatic Main.out
    return
  end
end
|}
    2

let test_factorial_recursion () =
  check_out "6! via recursion"
    {|
class Main
  static int out
  method int fact (int) locals 1
    iload 0
    iconst 1
    if_icmpgt rec
    iconst 1
    ireturn
  rec:
    iload 0
    iload 0
    iconst 1
    isub
    invoke Main.fact
    imul
    ireturn
  end
  method void main () locals 0
    iconst 6
    invoke Main.fact
    putstatic Main.out
    return
  end
end
|}
    720

let test_objects_and_arrays () =
  check_out "object graph and arrays"
    {|
class Node
  field ref next
  field int v
  method void <init> (ref int) locals 2 ctor
    aload 0
    iload 1
    putfield Node.v
    return
  end
end
class Main
  static int out
  method void main () locals 3
    ; build 2-node list: a.v=5, b.v=37, a.next=b
    new Node
    dup
    iconst 5
    invoke Node.<init>
    astore 0
    new Node
    dup
    iconst 37
    invoke Node.<init>
    astore 1
    aload 0
    aload 1
    putfield Node.next
    ; out = a.v + a.next.v  plus an int-array round trip
    aload 0
    getfield Node.v
    aload 0
    getfield Node.next
    getfield Node.v
    iadd
    istore 2
    iconst 3
    inewarray
    astore 1
    aload 1
    iconst 2
    iload 2
    iastore
    aload 1
    iconst 2
    iaload
    putstatic Main.out
    return
  end
end
|}
    42

let test_swap_dup_pop () =
  check_out "stack shuffles"
    {|
class Main
  static int out
  method void main () locals 0
    iconst 1
    iconst 2
    swap
    isub        ; 2 - 1 = 1
    dup
    iadd        ; 2
    iconst 9
    pop
    putstatic Main.out
    return
  end
end
|}
    2

let test_div_by_zero_handler () =
  check_out "arith exception caught"
    {|
class Main
  static int out
  method void main () locals 0
  t0:
    iconst 1
    iconst 0
    idiv
    putstatic Main.out
  t1:
    return
  h:
    iconst 99
    putstatic Main.out
    return
    catch arith t0 t1 h
  end
end
|}
    99

let test_bounds_handler () =
  check_out "bounds exception caught"
    {|
class T
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static int out
  method void main () locals 1
  t0:
    iconst 2
    anewarray T
    astore 0
    aload 0
    iconst 5
    aaload
    pop
    iconst 0
    putstatic Main.out
  t1:
    return
  h:
    iconst 7
    putstatic Main.out
    return
    catch bounds t0 t1 h
  end
end
|}
    7

let test_null_deref_handler () =
  check_out "null deref caught via any-handler"
    {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static int out
  method void main () locals 1
  t0:
    aconst_null
    astore 0
    aload 0
    getfield T.f
    pop
    iconst 0
    putstatic Main.out
  t1:
    return
  h:
    iconst 13
    putstatic Main.out
    return
    catch any t0 t1 h
  end
end
|}
    13

let test_exception_unwinds_frames () =
  check_out "exception propagates through callee"
    {|
class Main
  static int out
  method void boom () locals 0
    iconst 1
    iconst 0
    idiv
    pop
    return
  end
  method void main () locals 0
  t0:
    invoke Main.boom
    iconst 0
    putstatic Main.out
  t1:
    return
  h:
    iconst 21
    putstatic Main.out
    return
    catch arith t0 t1 h
  end
end
|}
    21

let test_uncaught_exception_kills_thread () =
  let r =
    run
      {|
class Main
  static int out
  method void main () locals 0
    iconst 1
    iconst 0
    idiv
    putstatic Main.out
    return
  end
end
|}
  in
  match r.thread_errors with
  | [ (0, msg) ] -> Alcotest.(check string) "error kind" "arith" msg
  | other ->
      Alcotest.failf "expected main-thread death, got %d errors"
        (List.length other)

let test_threads_interleave () =
  (* two spawned workers count in private locals and publish to disjoint
     statics, so the check is interleaving-independent; a shared counter
     would exhibit (deterministic, scheduler-dependent) lost updates *)
  let r =
    run
      {|
class Main
  static int out
  static int out2
  method void worker1 (int) locals 2
    iconst 0
    istore 1
  loop:
    iload 1
    iload 0
    if_icmpge fin
    iinc 1 1
    goto loop
  fin:
    iload 1
    putstatic Main.out
    return
  end
  method void worker2 (int) locals 2
    iconst 0
    istore 1
  loop:
    iload 1
    iload 0
    if_icmpge fin
    iinc 1 1
    goto loop
  fin:
    iload 1
    putstatic Main.out2
    return
  end
  method void main () locals 0
    iconst 40
    spawn Main.worker1
    iconst 41
    spawn Main.worker2
    return
  end
end
|}
  in
  Alcotest.(check (list (pair int string))) "no errors" [] r.thread_errors;
  Alcotest.(check int) "worker 1 finished" 40 (out_static r);
  match Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out2") with
  | Some (Jrt.Value.Int n) -> Alcotest.(check int) "worker 2 finished" 41 n
  | _ -> Alcotest.fail "no out2"

let test_negative_array_size () =
  check_out "negative array size raises bounds"
    {|
class T
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static int out
  method void main () locals 0
  t0:
    iconst 1
    ineg
    anewarray T
    pop
    iconst 0
    putstatic Main.out
  t1:
    return
  h:
    iconst 3
    putstatic Main.out
    return
    catch bounds t0 t1 h
  end
end
|}
    3

let test_site_stats_count_prenull () =
  (* write the same field twice: first pre-null, second not *)
  let r =
    run
      {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static ref sink
  method void main () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    aload 0
    putfield T.f
    aload 0
    aload 0
    putfield T.f
    return
  end
end
|}
  in
  let d = r.dyn in
  Alcotest.(check int) "2 executions" 2 d.total_execs;
  (* two distinct sites: the first always sees null (potentially
     pre-null), the second always sees the first value *)
  Alcotest.(check int) "one potentially-pre-null execution" 1
    d.pot_pre_null_execs

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("arithmetic", test_arith);
      ("recursion", test_factorial_recursion);
      ("objects and arrays", test_objects_and_arrays);
      ("stack shuffles", test_swap_dup_pop);
      ("div by zero handler", test_div_by_zero_handler);
      ("bounds handler", test_bounds_handler);
      ("null deref handler", test_null_deref_handler);
      ("exception unwinds frames", test_exception_unwinds_frames);
      ("uncaught kills thread", test_uncaught_exception_kills_thread);
      ("threads interleave", test_threads_interleave);
      ("negative array size", test_negative_array_size);
      ("site stats pre-null", test_site_stats_count_prenull);
    ]
