(* Additional mini-Java coverage: parser corner cases (else-if chains,
   parenthesized condition backtracking), semantics of nested control
   flow, and frontend/backend integration details. *)

let run src =
  let prog = Jsrc.Compile.compile_source src in
  Jir.Verifier.verify_exn prog;
  Jrt.Runner.run prog ~entry:{ Jir.Types.mclass = "Main"; mname = "main" }

let out_static (r : Jrt.Runner.report) =
  match Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out") with
  | Some (Jrt.Value.Int n) -> n
  | _ -> Alcotest.fail "no int Main.out"

let check_out name src expected =
  let r = run src in
  Alcotest.(check (list (pair int string))) (name ^ " errors") []
    r.thread_errors;
  Alcotest.(check int) name expected (out_static r)

let test_else_if_chain () =
  check_out "else-if classification"
    {|
class Main {
  static int out;
  static int classify(int n) {
    if (n < 10) { return 1; }
    else if (n < 100) { return 2; }
    else if (n < 1000) { return 3; }
    else { return 4; }
  }
  static void main() {
    Main.out = classify(5) * 1000 + classify(50) * 100
             + classify(500) * 10 + classify(5000);
  }
}
|}
    1234

let test_parenthesized_conditions () =
  check_out "nested parens in conditions"
    {|
class Main {
  static int out;
  static void main() {
    int a = 3;
    int b = 4;
    int x = 0;
    if ((a < b) && !(a + 1 == b && b > 10)) { x = 1; }
    if ((a + 1) * 2 > b) { x = x + 2; }
    if (((a < b) || (b < a)) && a != b) { x = x + 4; }
    Main.out = x;
  }
}
|}
    7

let test_nested_loops () =
  check_out "nested loops with shadowless scopes"
    {|
class Main {
  static int out;
  static void main() {
    int acc = 0;
    for (int i = 0; i < 4; i = i + 1) {
      int inner = 0;
      for (int j = 0; j < i; j = j + 1) { inner = inner + 1; }
      while (inner > 0) { acc = acc + 1; inner = inner - 1; }
    }
    Main.out = acc;
  }
}
|}
    6

let test_ref_equality_semantics () =
  check_out "reference == is identity, not structure"
    {|
class Box { int v; }
class Main {
  static int out;
  static void main() {
    Box a = new Box();
    Box b = new Box();
    Box c = a;
    int x = 0;
    if (a == c) { x = x + 1; }
    if (a != b) { x = x + 2; }
    if (a == b) { x = x + 100; }
    Main.out = x;
  }
}
|}
    3

let test_field_chain () =
  check_out "deep field chains"
    {|
class N { N next; int v; }
class Main {
  static int out;
  static void main() {
    N a = new N();
    a.next = new N();
    a.next.next = new N();
    a.next.next.v = 42;
    Main.out = a.next.next.v;
  }
}
|}
    42

let test_negative_literals_and_unary () =
  check_out "unary minus"
    {|
class Main {
  static int out;
  static void main() {
    int a = -5;
    int b = - (a * -2);
    Main.out = b - a;   // -10 - (-5) = -5 ... then negate
    Main.out = -Main.out;
  }
}
|}
    5

let test_runtime_exception_kills_thread () =
  let r =
    run
      {|
class Main {
  static int out;
  static void main() {
    int zero = 0;
    Main.out = 10 / zero;
  }
}
|}
  in
  match r.thread_errors with
  | [ (0, "arith") ] -> ()
  | other -> Alcotest.failf "expected arith death, got %d" (List.length other)

let test_null_deref_from_source () =
  let r =
    run
      {|
class T { T f; }
class Main {
  static void main() {
    T t = null;
    t.f = null;
  }
}
|}
  in
  match r.thread_errors with
  | [ (0, "null") ] -> ()
  | other -> Alcotest.failf "expected null death, got %d" (List.length other)

let test_instance_method_unqualified_call () =
  check_out "unqualified instance call resolves through this"
    {|
class Main {
  static int out;
  int base;
  int bump(int k) { return this.base + k; }
  int twice(int k) { return bump(k) + bump(k); }
  static void main() {
    Main m = new Main();
    m.base = 10;
    Main.out = m.twice(6);
  }
}
|}
    32

let test_ctor_chains_to_helper () =
  (* constructor calling an instance helper on this: the helper receives
     the constructor's unescaped receiver *)
  check_out "constructor calls instance method"
    {|
class P {
  int a;
  int b;
  P(int x) { this.a = x; init2(x * 2); }
  void init2(int y) { this.b = y; }
}
class Main {
  static int out;
  static void main() {
    P p = new P(7);
    Main.out = p.a + p.b;
  }
}
|}
    21

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("else-if chain", test_else_if_chain);
      ("parenthesized conditions", test_parenthesized_conditions);
      ("nested loops", test_nested_loops);
      ("reference equality", test_ref_equality_semantics);
      ("field chains", test_field_chain);
      ("unary minus", test_negative_literals_and_unary);
      ("arith kills thread", test_runtime_exception_kills_thread);
      ("null deref from source", test_null_deref_from_source);
      ("unqualified instance call", test_instance_method_unqualified_call);
      ("ctor calls helper", test_ctor_chains_to_helper);
    ]
