(* Unit and property tests for the abstract state: merging, escape
   closure, allocation-site retirement, null-or-same fact management. *)

module S = Satb_core.State
module Sym = Satb_core.Refsym
module I = Satb_core.Intval
module F = Satb_core.Field_id

let rs = Sym.Set.of_list
let f_a = F.F ("C", "a")
let f_b = F.F ("C", "b")
let a0 = Sym.recent 0
let b0 = Sym.summary 0
let a1 = Sym.recent 1

let empty_state ~locals : S.t =
  {
    rho = Array.make locals S.Bot;
    stk = [];
    nl = Sym.Set.singleton Sym.Global;
    sigma = S.Sigma.empty;
    len = S.Rmap.empty;
    nr = S.Rmap.empty;
    shift = None;
  }

let state_eq : S.t Alcotest.testable = Alcotest.testable S.pp S.equal

(* ---- lookups ----------------------------------------------------------- *)

let test_lookup_global () =
  let s = empty_state ~locals:1 in
  match S.lookup_field s Sym.Global f_a with
  | S.Ref { refs; _ } ->
      Alcotest.(check bool) "global collapses" true
        (Sym.Set.equal refs (rs [ Sym.Global ]))
  | _ -> Alcotest.fail "expected ref"

let test_lookup_non_tl_is_global () =
  let s = empty_state ~locals:1 in
  let s = { s with nl = Sym.Set.add a0 s.nl } in
  let s = { s with sigma = S.Sigma.add (a0, f_a) S.null_v s.sigma } in
  match S.lookup_field s a0 f_a with
  | S.Ref { refs; _ } ->
      Alcotest.(check bool) "NL lookup gives Global" true
        (Sym.Set.equal refs (rs [ Sym.Global ]))
  | _ -> Alcotest.fail "expected ref"

let test_lookup_recorded () =
  let s = empty_state ~locals:1 in
  let s = { s with sigma = S.Sigma.add (a0, f_a) S.null_v s.sigma } in
  match S.lookup_field s a0 f_a with
  | S.Ref { refs; _ } ->
      Alcotest.(check bool) "definitely null" true (Sym.Set.is_empty refs)
  | _ -> Alcotest.fail "expected ref"

(* ---- escape closure ---------------------------------------------------- *)

let test_escape_transitive () =
  (* a0.a = a1; escaping a0 must also escape a1 (AllNonTL closure) *)
  let s = empty_state ~locals:1 in
  let s =
    { s with sigma = S.Sigma.add (a0, f_a) (S.ref_of (rs [ a1 ])) s.sigma }
  in
  let s = S.all_non_tl s (rs [ a0 ]) in
  Alcotest.(check bool) "a0 escaped" true (Sym.Set.mem a0 s.nl);
  Alcotest.(check bool) "a1 escaped transitively" true (Sym.Set.mem a1 s.nl)

let test_escape_cond_only_when_receiver_escaped () =
  let s = empty_state ~locals:1 in
  let local_store =
    S.all_non_tl_cond s ~objs:(rs [ a0 ]) ~value:(S.ref_of (rs [ a1 ]))
  in
  Alcotest.(check bool) "store into thread-local: no escape" false
    (Sym.Set.mem a1 local_store.nl);
  let s2 = { s with nl = Sym.Set.add a0 s.nl } in
  let escaped_store =
    S.all_non_tl_cond s2 ~objs:(rs [ a0 ]) ~value:(S.ref_of (rs [ a1 ]))
  in
  Alcotest.(check bool) "store into escaped: value escapes" true
    (Sym.Set.mem a1 escaped_store.nl)

let test_escape_args () =
  let s = empty_state ~locals:1 in
  let s = S.escape_args s [ S.ref_of (rs [ a0 ]); S.Int I.top ] in
  Alcotest.(check bool) "ref arg escapes" true (Sym.Set.mem a0 s.nl)

(* ---- retire_site (§2.4 newinstance) ------------------------------------ *)

let test_retire_substitutes_everywhere () =
  let s = empty_state ~locals:2 in
  let s = S.set_local s 0 (S.ref_of (rs [ a0 ])) in
  let s = S.push (S.ref_of (rs [ a0; a1 ])) s in
  let s =
    { s with sigma = S.Sigma.add (a1, f_a) (S.ref_of (rs [ a0 ])) s.sigma }
  in
  let s = { s with nl = Sym.Set.add a0 s.nl } in
  let s = S.retire_site s 0 in
  (match S.local s 0 with
  | S.Ref { refs; _ } ->
      Alcotest.(check bool) "local substituted" true
        (Sym.Set.equal refs (rs [ b0 ]))
  | _ -> Alcotest.fail "expected ref");
  (match s.stk with
  | [ S.Ref { refs; _ } ] ->
      Alcotest.(check bool) "stack substituted" true
        (Sym.Set.equal refs (rs [ b0; a1 ]))
  | _ -> Alcotest.fail "expected one stack slot");
  (match S.Sigma.find_opt (a1, f_a) s.sigma with
  | Some (S.Ref { refs; _ }) ->
      Alcotest.(check bool) "sigma range substituted" true
        (Sym.Set.equal refs (rs [ b0 ]))
  | _ -> Alcotest.fail "expected sigma entry");
  Alcotest.(check bool) "NL substituted" true (Sym.Set.mem b0 s.nl);
  Alcotest.(check bool) "A gone from NL" false (Sym.Set.mem a0 s.nl)

let test_retire_merges_sigma_entries () =
  (* both (A,f) and (B,f) exist: they merge by union *)
  let s = empty_state ~locals:1 in
  let s =
    {
      s with
      sigma =
        S.Sigma.add (a0, f_a) (S.ref_of (rs [ a1 ]))
          (S.Sigma.add (b0, f_a) (S.ref_of (rs [ Sym.Global ])) s.sigma);
    }
  in
  let s = S.retire_site s 0 in
  match S.Sigma.find_opt (b0, f_a) s.sigma with
  | Some (S.Ref { refs; _ }) ->
      Alcotest.(check bool) "merged by union" true
        (Sym.Set.equal refs (rs [ a1; Sym.Global ]))
  | _ -> Alcotest.fail "expected merged entry"

(* ---- merge ------------------------------------------------------------- *)

let gen () = I.Gen.create ()

let test_merge_rho_union () =
  let s1 = S.set_local (empty_state ~locals:1) 0 (S.ref_of (rs [ a0 ])) in
  let s2 = S.set_local (empty_state ~locals:1) 0 (S.ref_of (rs [ a1 ])) in
  let m = S.merge ~gen:(gen ()) s1 s2 in
  match S.local m 0 with
  | S.Ref { refs; _ } ->
      Alcotest.(check bool) "union" true (Sym.Set.equal refs (rs [ a0; a1 ]))
  | _ -> Alcotest.fail "expected ref"

let test_merge_bot_identity () =
  let s1 = S.set_local (empty_state ~locals:1) 0 (S.ref_of (rs [ a0 ])) in
  let s2 = empty_state ~locals:1 in
  let m = S.merge ~gen:(gen ()) s1 s2 in
  Alcotest.check state_eq "⊥ is identity" s1 m

let test_merge_stack_mismatch_raises () =
  let s1 = S.push S.null_v (empty_state ~locals:1) in
  let s2 = empty_state ~locals:1 in
  Alcotest.check_raises "stack mismatch"
    (Invalid_argument "State.merge: operand stack mismatch") (fun () ->
      ignore (S.merge ~gen:(gen ()) s1 s2))

let test_merge_sigma_missing_is_bottom () =
  let s1 =
    {
      (empty_state ~locals:1) with
      sigma = S.Sigma.add (a0, f_a) S.null_v S.Sigma.empty;
    }
  in
  let s2 = empty_state ~locals:1 in
  let m = S.merge ~gen:(gen ()) s1 s2 in
  match S.Sigma.find_opt (a0, f_a) m.sigma with
  | Some (S.Ref { refs; _ }) ->
      Alcotest.(check bool) "kept as definitely null" true
        (Sym.Set.is_empty refs)
  | _ -> Alcotest.fail "expected entry"

let test_merge_nos_survives_via_sigma_null () =
  (* side 1 carries the fact, side 2's σ shows the field null: the fact
     survives the merge (the §4.3 disjunction) *)
  let fact = (a0, f_a) in
  let v1 = S.Ref (S.mk_refinfo ~nos:(S.Nos.singleton fact) (rs [ Sym.Global ])) in
  let v2 = S.Ref (S.mk_refinfo (rs [ Sym.Global ])) in
  let s1 = S.set_local (empty_state ~locals:1) 0 v1 in
  let s2 = S.set_local (empty_state ~locals:1) 0 v2 in
  let s2 = { s2 with sigma = S.Sigma.add fact S.null_v s2.sigma } in
  let m = S.merge ~gen:(gen ()) s1 s2 in
  (match S.local m 0 with
  | S.Ref { nos; _ } ->
      Alcotest.(check bool) "fact survives" true (S.Nos.mem fact nos)
  | _ -> Alcotest.fail "expected ref");
  (* without the σ-null justification it must die *)
  let s2' = S.set_local (empty_state ~locals:1) 0 v2 in
  let m' = S.merge ~gen:(gen ()) s1 s2' in
  match S.local m' 0 with
  | S.Ref { nos; _ } ->
      Alcotest.(check bool) "fact dies" false (S.Nos.mem fact nos)
  | _ -> Alcotest.fail "expected ref"

let test_kill_nos () =
  let fact = (a0, f_a) in
  let other = (a0, f_b) in
  let v = S.Ref (S.mk_refinfo ~nos:(S.Nos.of_list [ fact; other ]) (rs [])) in
  let s = S.set_local (empty_state ~locals:1) 0 v in
  let s = S.kill_nos s [ fact ] in
  match S.local s 0 with
  | S.Ref { nos; _ } ->
      Alcotest.(check bool) "killed" false (S.Nos.mem fact nos);
      Alcotest.(check bool) "other kept" true (S.Nos.mem other nos)
  | _ -> Alcotest.fail "expected ref"

(* ---- properties -------------------------------------------------------- *)

let mk_state refs_list : S.t =
  let s = empty_state ~locals:(List.length refs_list) in
  List.fold_left
    (fun (i, s) refs -> (i + 1, S.set_local s i (S.ref_of refs)))
    (0, s) refs_list
  |> snd

let prop_merge_commutative_refs =
  QCheck2.Test.make ~name:"state merge commutes on ref locals" ~count:200
    (QCheck2.Gen.pair Gen.refset Gen.refset) (fun (r1, r2) ->
      let s1 = mk_state [ r1 ] and s2 = mk_state [ r2 ] in
      let m12 = S.merge ~gen:(gen ()) s1 s2 in
      let m21 = S.merge ~gen:(gen ()) s2 s1 in
      match S.local m12 0, S.local m21 0 with
      | S.Ref a, S.Ref b -> Sym.Set.equal a.refs b.refs
      | _ -> false)

let prop_merge_upper_bound =
  QCheck2.Test.make ~name:"merge over-approximates both inputs" ~count:200
    (QCheck2.Gen.pair Gen.refset Gen.refset) (fun (r1, r2) ->
      let s1 = mk_state [ r1 ] and s2 = mk_state [ r2 ] in
      let m = S.merge ~gen:(gen ()) s1 s2 in
      match S.local m 0 with
      | S.Ref a -> Sym.Set.subset r1 a.refs && Sym.Set.subset r2 a.refs
      | _ -> false)

let prop_escape_monotone =
  QCheck2.Test.make ~name:"all_non_tl only grows NL" ~count:200
    (QCheck2.Gen.pair Gen.refset Gen.refset) (fun (nl0, rs') ->
      let s = { (empty_state ~locals:1) with nl = nl0 } in
      let s' = S.all_non_tl s rs' in
      Sym.Set.subset nl0 s'.nl && Sym.Set.subset rs' s'.nl)

let unit_tests =
  [
    ("lookup global", test_lookup_global);
    ("lookup non-thread-local", test_lookup_non_tl_is_global);
    ("lookup recorded", test_lookup_recorded);
    ("escape transitive", test_escape_transitive);
    ("escape conditional", test_escape_cond_only_when_receiver_escaped);
    ("escape args", test_escape_args);
    ("retire substitutes", test_retire_substitutes_everywhere);
    ("retire merges sigma", test_retire_merges_sigma_entries);
    ("merge rho union", test_merge_rho_union);
    ("merge bot identity", test_merge_bot_identity);
    ("merge stack mismatch", test_merge_stack_mismatch_raises);
    ("merge sigma bottom", test_merge_sigma_missing_is_bottom);
    ("merge nos disjunction", test_merge_nos_survives_via_sigma_null);
    ("kill_nos", test_kill_nos);
  ]

let tests =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) unit_tests
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_merge_commutative_refs; prop_merge_upper_bound; prop_escape_monotone ]
