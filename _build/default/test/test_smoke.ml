(* End-to-end smoke tests: assemble a small program, verify it, analyze
   it, and run it under both collectors. *)

let expand_src =
  {|
class T
  field ref payload
  method void <init> (ref) locals 1 ctor
    return
  end
end

class Main
  static ref result
  method ref expand (ref) locals 4
    ; new_ta = new T[ta.length * 2]
    aload 0
    arraylength
    iconst 2
    imul
    anewarray T
    astore 1
    ; for (i = 0; i < ta.length; i++) new_ta[i] = ta[i]
    iconst 0
    istore 2
  loop:
    iload 2
    aload 0
    arraylength
    if_icmpge done
    aload 1
    iload 2
    aload 0
    iload 2
    aaload
    aastore
    iinc 2 1
    goto loop
  done:
    aload 1
    areturn
  end

  method void main () locals 3
    ; build a source array of 8 fresh objects
    iconst 8
    anewarray T
    astore 0
    iconst 0
    istore 1
  fill:
    iload 1
    iconst 8
    if_icmpge go
    aload 0
    iload 1
    new T
    dup
    invoke T.<init>
    aastore
    iinc 1 1
    goto fill
  go:
    aload 0
    invoke Main.expand
    putstatic Main.result
    return
  end
end
|}

let parse_and_link () = Jir.Parser.parse_linked expand_src

let test_parse_verify () =
  let prog = parse_and_link () in
  match Jir.Verifier.verify_program prog with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "verify: %a" Fmt.(list Jir.Verifier.pp_error) errs

let test_roundtrip () =
  let prog = parse_and_link () in
  let printed = Jir.Pp.program_to_string (Jir.Program.program prog) in
  let reparsed = Jir.Parser.parse_program printed in
  let printed2 = Jir.Pp.program_to_string reparsed in
  Alcotest.(check string) "pp/parse round-trip" printed printed2

let test_analysis_elides_expand_loop () =
  let prog = parse_and_link () in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  let stats = Satb_core.Driver.static_stats compiled in
  (* expand's loop store and main's fill-loop store should both be proven
     initializing; the putstatic must keep its barrier *)
  Alcotest.(check bool) "some sites elided" true (stats.elided_sites >= 2);
  Alcotest.(check bool)
    "statics never elided" true
    (stats.static_sites >= 1 && stats.elided_sites < stats.total_sites)

let run_with gc =
  let prog = parse_and_link () in
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  let policy c m pc =
    not
      (Satb_core.Driver.needs_barrier compiled
         { sk_class = c; sk_method = m; sk_pc = pc })
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  Jrt.Runner.run ~cfg ~gc
    ~entry:{ Jir.Types.mclass = "Main"; mname = "main" }
    compiled.program

let test_run_no_gc () =
  let r = run_with Jrt.Runner.No_gc in
  Alcotest.(check (list (pair int string))) "no thread errors" [] r.thread_errors;
  Alcotest.(check bool) "executed instructions" true (r.steps > 50)

let test_run_satb () =
  let r =
    run_with (Jrt.Runner.make_satb ~trigger_allocs:4 ~steps_per_increment:2 ())
  in
  Alcotest.(check (list (pair int string))) "no thread errors" [] r.thread_errors;
  match r.gc with
  | Some g -> Alcotest.(check int) "no SATB violations" 0 g.total_violations
  | None -> Alcotest.fail "expected gc summary"

let test_run_incr () =
  let r =
    run_with (Jrt.Runner.make_incr ~trigger_allocs:4 ~steps_per_increment:2 ())
  in
  Alcotest.(check (list (pair int string))) "no thread errors" [] r.thread_errors;
  match r.gc with
  | Some g -> Alcotest.(check int) "no incremental violations" 0 g.total_violations
  | None -> Alcotest.fail "expected gc summary"

let tests =
  [
    Alcotest.test_case "parse+verify" `Quick test_parse_verify;
    Alcotest.test_case "pp round-trip" `Quick test_roundtrip;
    Alcotest.test_case "analysis elides expand loop" `Quick
      test_analysis_elides_expand_loop;
    Alcotest.test_case "run no-gc" `Quick test_run_no_gc;
    Alcotest.test_case "run satb" `Quick test_run_satb;
    Alcotest.test_case "run incremental" `Quick test_run_incr;
  ]
