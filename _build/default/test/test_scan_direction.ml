(* Empirical validation of the §4.3 scan-direction contract: move-down
   elision is sound iff the collector scans object arrays in the
   direction opposed to element movement.  Elements move DOWN in a delete
   loop, so the marker must scan DESCENDING: with descending scans no
   schedule produces a violation; with ascending scans a moved element
   can hop over the marker and vanish from the snapshot, which the oracle
   detects. *)

let src =
  {|
class T
  field ref f
  method void <init> (ref) locals 1 ctor
    return
  end
end
class Main
  static ref arr
  method void delete () locals 1
    getstatic Main.arr
    iconst 0
    aconst_null
    aastore
    iconst 0
    istore 0
  loop:
    iload 0
    getstatic Main.arr
    arraylength
    iconst 1
    isub
    if_icmpge fin
    getstatic Main.arr
    iload 0
    getstatic Main.arr
    iload 0
    iconst 1
    iadd
    aaload
    aastore
    iinc 0 1
    goto loop
  fin:
    return
  end
  method void main () locals 1
    iconst 48
    anewarray T
    putstatic Main.arr
    iconst 0
    istore 0
  fill:
    iload 0
    iconst 48
    if_icmpge work
    getstatic Main.arr
    iload 0
    new T
    dup
    invoke T.<init>
    aastore
    iinc 0 1
    goto fill
  work:
    iconst 40
    istore 0
  rounds:
    iload 0
    ifle fin
    invoke Main.delete
    iinc 0 -1
    goto rounds
  fin:
    return
  end
end
|}

let compiled =
  lazy
    (let prog = Jir.Parser.parse_linked src in
     let conf = { Satb_core.Analysis.default_config with move_down = true } in
     Satb_core.Driver.compile ~conf prog)

(* a hand-rolled scheduler loop so the scan direction is configurable *)
let run_with ~direction ~seed ~quantum ~gc_period ~steps ~chunk : int =
  let compiled = Lazy.force compiled in
  let policy c m pc =
    not
      (Satb_core.Driver.needs_barrier compiled
         { sk_class = c; sk_method = m; sk_pc = pc })
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  let m = Jrt.Interp.create ~cfg compiled.program in
  let _ =
    Jrt.Interp.spawn_thread m { Jir.Types.mclass = "Main"; mname = "main" } []
  in
  let gc =
    Jrt.Satb_gc.create ~steps_per_increment:steps ~array_chunk:chunk
      ~direction m.Jrt.Interp.heap ~roots:(fun () -> Jrt.Interp.roots m)
  in
  Jrt.Interp.set_collector m (Jrt.Satb_gc.hooks gc);
  let violations = ref 0 in
  let since = ref 0 in
  let lcg = ref (if seed = 0 then 1 else seed) in
  let rand b =
    lcg := (!lcg * 1103515245) + 12345;
    1 + (((!lcg lsr 16) land 0x3FFF) mod b)
  in
  let continue_ = ref true in
  while !continue_ do
    let runnable =
      List.filter (fun th -> not th.Jrt.Interp.finished) m.Jrt.Interp.threads
    in
    if runnable = [] then continue_ := false
    else
      List.iter
        (fun th ->
          let q = if seed = 0 then quantum else rand quantum in
          let k = ref 0 in
          while !k < q && not th.Jrt.Interp.finished do
            ignore (Jrt.Interp.step m th);
            incr k;
            incr since;
            if !since >= gc_period then begin
              since := 0;
              Jrt.Satb_gc.step gc;
              if
                (not (Jrt.Satb_gc.is_marking gc))
                && m.Jrt.Interp.heap.Jrt.Heap.total_allocated > 8
              then Jrt.Satb_gc.start_cycle gc;
              if Jrt.Satb_gc.quiescent gc then
                violations :=
                  !violations + (Jrt.Satb_gc.finish_cycle gc).violations
            end
          done)
        runnable
  done;
  if Jrt.Satb_gc.is_marking gc then
    violations := !violations + (Jrt.Satb_gc.finish_cycle gc).violations;
  !violations

let params seed =
  ( 1 + (seed * 7 mod 50),
    1 + (seed * 13 mod 24),
    1 + (seed mod 3),
    1 + (seed mod 2) )

let test_descending_always_sound () =
  for seed = 1 to 60 do
    let quantum, gc_period, steps, chunk = params seed in
    let v =
      run_with ~direction:Jrt.Satb_gc.Descending ~seed ~quantum ~gc_period
        ~steps ~chunk
    in
    if v > 0 then
      Alcotest.failf "descending scan violated at seed %d (%d misses)" seed v
  done

let test_ascending_breaks () =
  (* the wrong direction must lose snapshot objects on at least some
     schedules — seed 7 and friends do it deterministically *)
  let broke = ref false in
  for seed = 1 to 60 do
    let quantum, gc_period, steps, chunk = params seed in
    if
      run_with ~direction:Jrt.Satb_gc.Ascending ~seed ~quantum ~gc_period
        ~steps ~chunk
      > 0
    then broke := true
  done;
  Alcotest.(check bool)
    "ascending scan misses snapshot objects on some schedule" true !broke

let tests =
  [
    Alcotest.test_case "descending scan sound (60 schedules)" `Quick
      test_descending_always_sound;
    Alcotest.test_case "ascending scan unsound" `Quick test_ascending_breaks;
  ]
