(* Targeted tests for the field analysis (paper §2): each case is a small
   jasm program with known expected verdicts. *)

let compile ?(inline_limit = 100) ?(mode = Satb_core.Analysis.A)
    ?(null_or_same = false) src =
  let prog = Jir.Parser.parse_linked src in
  let conf = { Satb_core.Analysis.default_config with mode; null_or_same } in
  Satb_core.Driver.compile ~inline_limit ~conf prog

(* Find the verdict of the store nearest to the given label-free pc in the
   given method of the *inlined* program; tests instead locate stores by
   order of appearance. *)
let verdicts_of compiled ~meth =
  List.concat_map
    (fun (r : Satb_core.Analysis.method_result) ->
      if String.equal r.mr_method meth then r.verdicts else [])
    compiled.Satb_core.Driver.results

let elide_flags compiled ~meth =
  List.map (fun (v : Satb_core.Analysis.verdict) -> v.v_elide)
    (verdicts_of compiled ~meth)

let check_flags name ?inline_limit ?mode ?null_or_same src ~meth expected =
  let compiled = compile ?inline_limit ?mode ?null_or_same src in
  Alcotest.(check (list bool)) name expected (elide_flags compiled ~meth)

let base =
  {|
class T
  field ref f
  field ref g
  method void <init> (ref) locals 1 ctor
    return
  end
end
|}

let test_initializing_store_elided () =
  check_flags "init store elided"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ true ]

let test_escape_via_putstatic_kills () =
  check_flags "escape via putstatic"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    putstatic Main.sink
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ false; false ]
(* putstatic itself + the post-escape putfield *)

let test_escape_via_invoke_kills () =
  check_flags "escape via non-inlined call"
    (base
   ^ {|
class Main
  static ref sink
  method void big (ref) locals 3
    iconst 0
    istore 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    iinc 1 1
    return
  end
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    invoke Main.big
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ false ]

let test_second_store_same_field_kept () =
  (* first store fills the field; the second overwrites a possibly
     non-null value *)
  check_flags "strong update then overwrite"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.sink
    putfield T.f
    aload 0
    getstatic Main.sink
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ true; false ]

let test_two_fields_independent () =
  check_flags "distinct fields tracked separately"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.sink
    putfield T.f
    aload 0
    getstatic Main.sink
    putfield T.g
    return
  end
end
|})
    ~meth:"m" [ true; true ]

let test_constructor_entry_state () =
  (* inside a constructor, the receiver is unescaped and its declared
     fields null (§2.3): the first store to each field elides even when
     nothing is inlined *)
  check_flags "ctor entry state" ~inline_limit:0
    {|
class T
  field ref f
  method void <init> (ref ref) locals 2 ctor
    aload 0
    aload 1
    putfield T.f
    aload 0
    aload 1
    putfield T.f
    return
  end
end
|}
    ~meth:"<init>" [ true; false ]

let test_non_ctor_receiver_arg_escaped () =
  (* in a plain method the receiver argument is non-thread-local *)
  check_flags "plain method receiver" ~inline_limit:0
    (base
   ^ {|
class Main
  method void set (ref) locals 1
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"set" [ false ]

let test_two_names_per_site () =
  (* §2.4: store to the previous iteration's object must keep its barrier
     while the store to the fresh object elides *)
  let w = Workloads.Micro.two_names in
  let compiled = compile w.src in
  Alcotest.(check (list bool)) "W1 elided, W2 kept" [ true; false ]
    (elide_flags compiled ~meth:"loop")

let test_merged_receivers_weak_update () =
  (* receiver may be one of two allocation sites: elidable only if the
     field is null under both *)
  check_flags "merged receivers"
    (base
   ^ {|
class Main
  static int p
  static ref sink
  method void m () locals 2
    getstatic Main.p
    ifeq else1
    new T
    dup
    invoke T.<init>
    astore 0
    goto join
  else1:
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.sink
    putfield T.f
  join:
    aload 0
    getstatic Main.sink
    putfield T.f
    return
  end
end
|})
    ~meth:"m"
    (* the else-branch store elides (fresh, null field); the join store
       must keep its barrier: on the else path the field is non-null *)
    [ true; false ]

let test_value_from_global_still_elides () =
  (* what matters is the pre-state of the field, not the stored value *)
  check_flags "global value into fresh field"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    getstatic Main.sink
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ true ]

let test_store_into_field_of_loaded_object_kept () =
  check_flags "field of global object"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    getstatic Main.sink
    astore 0
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ false ]

let test_aastore_into_global_escapes_value () =
  (* storing a fresh object into an escaped array escapes it: later field
     stores keep their barrier *)
  check_flags "escape via aastore"
    (base
   ^ {|
class Main
  static ref arr
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    getstatic Main.arr
    iconst 0
    aload 0
    aastore
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ false; false ]

let test_escape_transitively_through_fields () =
  (* u is stored into t.f while both are local; when t escapes, u must
     too (AllNonTL closure through σ) *)
  check_flags "transitive escape"
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 2
    new T
    dup
    invoke T.<init>
    astore 0
    new T
    dup
    invoke T.<init>
    astore 1
    aload 0
    aload 1
    putfield T.f
    aload 0
    putstatic Main.sink
    aload 1
    getstatic Main.sink
    putfield T.g
    return
  end
end
|})
    ~meth:"m" [ true; false; false ]
(* t.f := u elides; putstatic kept; u.g := ... kept (u escaped with t) *)

let test_dead_code_verdict () =
  let compiled =
    compile
      (base
     ^ {|
class Main
  static ref sink
  method void m () locals 1
    goto out
    aconst_null
    aconst_null
    putfield T.f
  out:
    return
  end
end
|})
  in
  match verdicts_of compiled ~meth:"m" with
  | [ v ] ->
      Alcotest.(check bool) "dead store elided" true v.v_elide;
      Alcotest.(check string) "reason" "dead-code"
        (Satb_core.Analysis.string_of_reason v.v_reason)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let test_mode_b_keeps_everything () =
  check_flags "mode B" ~mode:Satb_core.Analysis.B
    (base
   ^ {|
class Main
  static ref sink
  method void m () locals 1
    new T
    dup
    invoke T.<init>
    astore 0
    aload 0
    aconst_null
    putfield T.f
    return
  end
end
|})
    ~meth:"m" [ false ]

let tests =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("initializing store elided", test_initializing_store_elided);
      ("escape via putstatic", test_escape_via_putstatic_kills);
      ("escape via call", test_escape_via_invoke_kills);
      ("strong update then overwrite", test_second_store_same_field_kept);
      ("fields independent", test_two_fields_independent);
      ("constructor entry state", test_constructor_entry_state);
      ("plain receiver escaped", test_non_ctor_receiver_arg_escaped);
      ("two names per site", test_two_names_per_site);
      ("merged receivers weak", test_merged_receivers_weak_update);
      ("global value into fresh field", test_value_from_global_still_elides);
      ("field of global object", test_store_into_field_of_loaded_object_kept);
      ("escape via aastore", test_aastore_into_global_escapes_value);
      ("transitive escape", test_escape_transitively_through_fields);
      ("dead code verdict", test_dead_code_verdict);
      ("mode B keeps everything", test_mode_b_keeps_everything);
    ]
