(* Table 1 shape regression tests: lock in that each workload's measured
   store population keeps matching the paper's row (who wins, field/array
   asymmetries, rough magnitudes).  Tolerances are generous — the claim is
   shape, not exact numbers. *)

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let measure (w : Workloads.Spec.t) = (Harness.Table1.measure w).dyn

let within name ~got ~want ~tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.1f within %.1f of paper's %.1f" name got tol want)
    true
    (Float.abs (got -. want) <= tol)

let check_row (w : Workloads.Spec.t) =
  let d = measure w in
  match w.paper_row with
  | None -> Alcotest.fail "paper row missing"
  | Some p ->
      within (w.name ^ " total elim%")
        ~got:(pct d.elided_execs d.total_execs)
        ~want:p.p_elim_pct ~tol:6.0;
      within (w.name ^ " potentially pre-null%")
        ~got:(pct d.pot_pre_null_execs d.total_execs)
        ~want:p.p_pot_pre_null_pct ~tol:8.0;
      within (w.name ^ " field share%")
        ~got:(pct d.field_execs (d.field_execs + d.array_execs))
        ~want:(float_of_int p.p_field_pct)
        ~tol:8.0;
      within (w.name ^ " field elim%")
        ~got:(pct d.field_elided d.field_execs)
        ~want:p.p_field_elim_pct ~tol:8.0;
      within (w.name ^ " array elim%")
        ~got:(pct d.array_elided d.array_execs)
        ~want:p.p_array_elim_pct ~tol:6.0

let test_row w () = check_row w

let test_benchmark_ordering () =
  (* the paper's qualitative ordering of total elimination rates:
     mtrt > jess > jack > javac > jbb > db *)
  let elim w =
    let d = measure w in
    pct d.elided_execs d.total_execs
  in
  let e_mtrt = elim Workloads.Mtrt.t
  and e_jess = elim Workloads.Jess.t
  and e_jack = elim Workloads.Jack.t
  and e_javac = elim Workloads.Javac_like.t
  and e_jbb = elim Workloads.Jbb.t
  and e_db = elim Workloads.Db.t in
  Alcotest.(check bool) "mtrt > jess" true (e_mtrt > e_jess);
  Alcotest.(check bool) "jess > jack" true (e_jess > e_jack);
  Alcotest.(check bool) "jack > javac" true (e_jack > e_javac);
  Alcotest.(check bool) "javac > jbb" true (e_javac > e_jbb);
  Alcotest.(check bool) "jbb > db" true (e_jbb > e_db)

let test_only_mtrt_and_javac_elide_arrays () =
  (* paper: array elimination is 0.0 for jess, db, jack, jbb *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let d = measure w in
      let a = pct d.array_elided d.array_execs in
      match w.name with
      | "mtrt" | "javac" ->
          Alcotest.(check bool) (w.name ^ " elides arrays") true (a > 10.0)
      | _ -> Alcotest.(check bool) (w.name ^ " no array elim") true (a < 0.5))
    Workloads.Registry.table1

let test_elimination_bounded_by_potential () =
  (* correctness check from §4.2: the analysis only eliminates at
     potentially pre-null sites, so elim% ≤ potential% — except for the
     null-or-same class, which is precisely NOT pre-null; so the bound
     holds for the plain A analysis *)
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let d = measure w in
      Alcotest.(check bool)
        (w.name ^ ": elim ≤ potential")
        true
        (d.elided_execs <= d.pot_pre_null_execs))
    Workloads.Registry.table1

let test_compress_nearly_barrier_free () =
  (* the paper omitted compress and mpegaudio for having "very little
     heap or pointer manipulation" (§4.1): confirm our lookalikes execute
     a handful of barriers while doing thousands of instructions of
     int-array work *)
  List.iter
    (fun w ->
      let cw = Harness.Exp.compile w in
      let r = Harness.Exp.run cw in
      Alcotest.(check bool)
        ((w : Workloads.Spec.t).name ^ " substantial work")
        true (r.steps > 5_000);
      Alcotest.(check bool)
        (w.name ^ " almost no barriers")
        true (r.dyn.total_execs < 5))
    Workloads.Registry.omitted

let test_micro_expand_full_elimination () =
  let d = measure Workloads.Micro.expand in
  Alcotest.(check int) "all array stores elided" d.array_execs d.array_elided

let tests =
  List.map
    (fun (w : Workloads.Spec.t) ->
      Alcotest.test_case ("table1 shape: " ^ w.name) `Quick (test_row w))
    Workloads.Registry.table1
  @ List.map
      (fun (n, f) -> Alcotest.test_case n `Quick f)
      [
        ("benchmark ordering", test_benchmark_ordering);
        ("array elimination pattern", test_only_mtrt_and_javac_elide_arrays);
        ("elim bounded by potential", test_elimination_bounded_by_potential);
        ("micro-expand fully elided", test_micro_expand_full_elimination);
        ("compress nearly barrier-free", test_compress_nearly_barrier_free);
      ]
