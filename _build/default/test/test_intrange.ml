(* Unit and property tests for null ranges (paper §3.2-3.3, §3.6). *)

module I = Satb_core.Intval
module R = Satb_core.Intrange

let rng : R.t Alcotest.testable = Alcotest.testable R.pp R.equal

let c = I.const
let c0 = I.of_const_unknown 0
let v0 = I.of_var_unknown 0

let full lo hi = R.Full (c lo, c hi)

(* ---- of_new_array ------------------------------------------------------ *)

let test_new_array () =
  Alcotest.check rng "fresh array of length 8" (full 0 7)
    (R.of_new_array (c 8));
  Alcotest.check rng "fresh array of symbolic length"
    (R.Full (c 0, I.add_const (-1) (I.scale 2 c0)))
    (R.of_new_array (I.scale 2 c0))

(* ---- contract (§3.3) --------------------------------------------------- *)

let test_contract_full_low_end () =
  Alcotest.check rng "store at lo" (full 1 7) (R.contract (full 0 7) (c 0))

let test_contract_full_high_end () =
  Alcotest.check rng "store at hi" (full 0 6) (R.contract (full 0 7) (c 7))

let test_contract_full_middle_loses_all () =
  (* the deliberately conservative heuristic: stores not at either end
     lose all information — this is also what makes the §3.6 overflow
     argument work *)
  Alcotest.check rng "store in the middle" R.Empty
    (R.contract (full 0 7) (c 3))

let test_contract_full_provably_outside () =
  Alcotest.check rng "store below keeps range" (full 2 7)
    (R.contract (full 2 7) (c 0));
  Alcotest.check rng "store above keeps range" (full 0 5)
    (R.contract (full 0 5) (c 7))

let test_contract_from () =
  Alcotest.check rng "store at lo of half-open" (R.From (I.add_const 1 v0))
    (R.contract (R.From v0) v0);
  Alcotest.check rng "store provably below" (R.From (I.add_const 2 v0))
    (R.contract (R.From (I.add_const 2 v0)) v0);
  Alcotest.check rng "unknown store loses all" R.Empty
    (R.contract (R.From v0) c0)

let test_contract_up_to () =
  Alcotest.check rng "store at hi"
    (R.Up_to (I.add_const (-1) v0))
    (R.contract (R.Up_to v0) v0);
  Alcotest.check rng "store provably above" (R.Up_to (c 3))
    (R.contract (R.Up_to (c 3)) (c 9));
  Alcotest.check rng "unknown store loses all" R.Empty
    (R.contract (R.Up_to v0) c0)

let test_contract_empty () =
  Alcotest.check rng "empty stays empty" R.Empty (R.contract R.Empty (c 0))

let test_contract_symbolic_equality () =
  (* index and bound share a variable unknown: equality is provable *)
  let lo = I.add_const 2 v0 in
  Alcotest.check rng "symbolic store at lo"
    (R.From (I.add_const 3 v0))
    (R.contract (R.From lo) lo)

(* ---- mem (elision judgment) -------------------------------------------- *)

let test_mem () =
  let len8 = c 8 in
  Alcotest.(check bool) "0 in [0..7] (len 8)" true
    (R.mem (full 0 7) (c 0) ~len:len8);
  Alcotest.(check bool) "7 in [0..7]" true (R.mem (full 0 7) (c 7) ~len:len8);
  Alcotest.(check bool) "not in empty" false (R.mem R.Empty (c 0) ~len:len8);
  Alcotest.(check bool) "v in [v..]" true (R.mem (R.From v0) v0 ~len:I.top);
  Alcotest.(check bool) "v+1 in [v..]" true
    (R.mem (R.From v0) (I.add_const 1 v0) ~len:I.top);
  Alcotest.(check bool) "v-1 not in [v..]" false
    (R.mem (R.From v0) (I.add_const (-1) v0) ~len:I.top);
  Alcotest.(check bool) "v in [..v]" true (R.mem (R.Up_to v0) v0 ~len:I.top);
  Alcotest.(check bool) "v+1 not in [..v]" false
    (R.mem (R.Up_to v0) (I.add_const 1 v0) ~len:I.top)

let test_mem_full_upper_bound_via_length () =
  (* [v .. 2c0-1] with length 2c0: the upper bound need not be proved
     because a successful store is bounds-checked (§3.1 example) *)
  let len = I.scale 2 c0 in
  let r = R.Full (v0, I.add_const (-1) len) in
  Alcotest.(check bool) "v in [v..len-1]" true (R.mem r v0 ~len);
  (* but with an unrelated upper bound, no proof *)
  let r' = R.Full (v0, c0) in
  Alcotest.(check bool) "v not provably in [v..c0]" false (R.mem r' v0 ~len)

(* ---- merge (§3.5) ------------------------------------------------------ *)

let fresh_ctx () = I.Ctx.create (I.Gen.create ())

let test_merge_same_shape () =
  let ctx = fresh_ctx () in
  (* the §3.5 example: Full(0, 2c0-1) ⊔ Full(1, 2c0-1) = Full(v, 2c0-1) *)
  let hi = I.add_const (-1) (I.scale 2 c0) in
  let m =
    R.merge ctx ~len1:(I.scale 2 c0) ~len2:(I.scale 2 c0)
      (R.Full (c 0, hi)) (R.Full (c 1, hi))
  in
  match m with
  | R.Full (I.Lin { var = Some (1, _); consts = []; base = 0 }, hi') ->
      Alcotest.(check bool) "upper bound preserved" true (I.equal hi hi')
  | other -> Alcotest.failf "unexpected merge result %a" R.pp other

let test_merge_empty_absorbs () =
  let ctx = fresh_ctx () in
  Alcotest.check rng "empty ⊔ x" R.Empty
    (R.merge ctx ~len1:I.top ~len2:I.top R.Empty (full 0 7));
  Alcotest.check rng "x ⊔ empty" R.Empty
    (R.merge ctx ~len1:I.top ~len2:I.top (full 0 7) R.Empty)

let test_merge_promotes_full_to_from () =
  (* Full(lo, len-1) ≡ From lo when merged against a half-open range *)
  let ctx = fresh_ctx () in
  let m =
    R.merge ctx ~len1:(c 8) ~len2:(c 8) (full 2 7) (R.From (c 2))
  in
  Alcotest.check rng "promoted" (R.From (c 2)) m

let test_merge_promotes_full_to_up_to () =
  let ctx = fresh_ctx () in
  let m =
    R.merge ctx ~len1:(c 8) ~len2:(c 8) (full 0 5) (R.Up_to (c 5))
  in
  Alcotest.check rng "promoted" (R.Up_to (c 5)) m

let test_merge_incompatible_shapes () =
  let ctx = fresh_ctx () in
  Alcotest.check rng "From ⊔ Up_to = Empty" R.Empty
    (R.merge ctx ~len1:I.top ~len2:I.top (R.From (c 0)) (R.Up_to (c 5)));
  (* Full against From without the length promotion also collapses *)
  Alcotest.check rng "unpromotable Full" R.Empty
    (R.merge ctx ~len1:(c 100) ~len2:(c 100) (full 0 5) (R.From (c 0)))

let test_merge_flat () =
  Alcotest.check rng "flat equal" (full 0 7) (R.merge_flat (full 0 7) (full 0 7));
  Alcotest.check rng "flat unequal" R.Empty
    (R.merge_flat (full 0 7) (full 1 7))

(* ---- properties -------------------------------------------------------- *)

(* soundness skeleton for contract on concrete ranges: model a concrete
   array of n cells and check that abstract contract over-approximates the
   concrete "still null" set *)
let prop_contract_concrete_soundness =
  QCheck2.Test.make ~name:"contract sound on concrete full ranges"
    ~count:500
    QCheck2.Gen.(pair (int_range 0 10) (int_range 0 10))
    (fun (n, ind) ->
      QCheck2.assume (n > 0 && ind < n);
      (* concrete: cells [0,n), all null, store at ind *)
      let abstract = R.contract (R.of_new_array (c n)) (c ind) in
      (* every index ≠ ind that the abstract range claims null must indeed
         be null: check via mem on each concrete index *)
      List.for_all
        (fun j ->
          if R.mem abstract (c j) ~len:(c n) then j <> ind else true)
        (List.init n Fun.id))

let prop_mem_empty_never =
  QCheck2.Test.make ~name:"mem on Empty is false" ~count:200 Gen.lin_intval
    (fun i -> not (R.mem R.Empty i ~len:I.top))

let prop_merge_flat_equal_or_empty =
  QCheck2.Test.make ~name:"merge_flat is equal-or-empty" ~count:500
    (QCheck2.Gen.pair Gen.intrange Gen.intrange) (fun (a, b) ->
      let m = R.merge_flat a b in
      if R.equal a b then R.equal m a else R.equal m R.Empty)

let prop_merge_claims_justified_on_both_sides =
  (* whatever the merged range claims (via mem with concrete values) must
     be claimed by both inputs when everything is concrete *)
  QCheck2.Test.make ~name:"concrete merge is an intersection" ~count:300
    QCheck2.Gen.(
      tup4 (int_range 0 6) (int_range 0 6) (int_range 0 6) (int_range 0 6))
    (fun (a1, b1, a2, b2) ->
      let n = 8 in
      let len = c n in
      let ctx = fresh_ctx () in
      let r1 = R.Full (c a1, c b1) in
      let r2 = R.Full (c a2, c b2) in
      let m = R.merge ctx ~len1:len ~len2:len r1 r2 in
      List.for_all
        (fun j ->
          if R.mem m (c j) ~len then
            R.mem r1 (c j) ~len && R.mem r2 (c j) ~len
          else true)
        (List.init n Fun.id))

let unit_tests =
  [
    ("of_new_array", test_new_array);
    ("contract full low end", test_contract_full_low_end);
    ("contract full high end", test_contract_full_high_end);
    ("contract middle loses all", test_contract_full_middle_loses_all);
    ("contract provably outside", test_contract_full_provably_outside);
    ("contract from", test_contract_from);
    ("contract up_to", test_contract_up_to);
    ("contract empty", test_contract_empty);
    ("contract symbolic equality", test_contract_symbolic_equality);
    ("mem", test_mem);
    ("mem via length bound", test_mem_full_upper_bound_via_length);
    ("merge same shape", test_merge_same_shape);
    ("merge empty absorbs", test_merge_empty_absorbs);
    ("merge promotes to From", test_merge_promotes_full_to_from);
    ("merge promotes to Up_to", test_merge_promotes_full_to_up_to);
    ("merge incompatible shapes", test_merge_incompatible_shapes);
    ("merge_flat", test_merge_flat);
  ]

let tests =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f) unit_tests
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_contract_concrete_soundness;
        prop_mem_empty_never;
        prop_merge_flat_equal_or_empty;
        prop_merge_claims_justified_on_both_sides;
      ]
