(* Differential testing of the interpreter's arithmetic and comparisons
   against OCaml's own semantics: generate random operand pairs, build a
   one-off program computing the operation, and compare results. *)

open Jir.Types

let run_expr (build : Jir.Builder.t -> unit) : (int, string) result =
  let main =
    Jir.Builder.meth "main" ~params:[] ~locals:2 (fun b ->
        build b;
        Jir.Builder.emit b (Putstatic { fclass = "Main"; fname = "out" });
        Jir.Builder.emit b Return)
  in
  let prog =
    Jir.Program.of_program
      (Jir.Builder.program
         [
           Jir.Builder.cls "Main"
             ~statics:[ Jir.Builder.field_decl "out" I ]
             ~methods:[ main ];
         ])
  in
  Jir.Verifier.verify_exn prog;
  let r = Jrt.Runner.run prog ~entry:{ mclass = "Main"; mname = "main" } in
  match r.thread_errors with
  | [ (_, e) ] -> Error e
  | _ :: _ :: _ -> Error "multiple"
  | [] -> (
      match Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out") with
      | Some (Jrt.Value.Int n) -> Ok n
      | _ -> Error "missing out")

let reference op a b =
  match op with
  | Add -> Ok (a + b)
  | Sub -> Ok (a - b)
  | Mul -> Ok (a * b)
  | Div -> if b = 0 then Error "arith" else Ok (a / b)
  | Rem -> if b = 0 then Error "arith" else Ok (a mod b)

let operand = QCheck2.Gen.int_range (-10_000) 10_000

let prop_binops =
  QCheck2.Test.make ~name:"interpreter arithmetic matches OCaml" ~count:300
    QCheck2.Gen.(
      triple (oneofl [ Add; Sub; Mul; Div; Rem ]) operand operand)
    (fun (op, a, b) ->
      let got =
        run_expr (fun bld ->
            Jir.Builder.emit_all bld [ Iconst a; Iconst b; Ibin op ])
      in
      got = reference op a b)

let prop_comparisons =
  QCheck2.Test.make ~name:"interpreter comparisons match OCaml" ~count:300
    QCheck2.Gen.(
      triple (oneofl [ Eq; Ne; Lt; Ge; Gt; Le ]) operand operand)
    (fun (cond, a, b) ->
      let got =
        run_expr (fun bld ->
            Jir.Builder.emit_all bld
              [ Iconst a; Iconst b; If_icmp (cond, "yes"); Iconst 0;
                Goto "done" ];
            Jir.Builder.label bld "yes";
            Jir.Builder.emit bld (Iconst 1);
            Jir.Builder.label bld "done")
      in
      got = Ok (if eval_cond cond a b then 1 else 0))

let prop_neg_and_iinc =
  QCheck2.Test.make ~name:"ineg and iinc match OCaml" ~count:300
    QCheck2.Gen.(pair operand (int_range (-100) 100))
    (fun (a, d) ->
      let got =
        run_expr (fun bld ->
            Jir.Builder.emit_all bld
              [ Iconst a; Istore 0; Iinc (0, d); Iload 0; Ineg ])
      in
      got = Ok (-(a + d)))

let prop_minijava_expressions =
  (* the same arithmetic through the mini-Java frontend *)
  QCheck2.Test.make ~name:"mini-Java arithmetic matches OCaml" ~count:200
    QCheck2.Gen.(triple (oneofl [ "+"; "-"; "*"; "/"; "%" ]) operand operand)
    (fun (op, a, b) ->
      let src =
        Printf.sprintf
          "class Main { static int out; static void main() { int x = %d; int y = %d; Main.out = x %s y; } }"
          a b op
      in
      let prog = Jsrc.Compile.compile_source src in
      let r =
        Jrt.Runner.run prog ~entry:{ mclass = "Main"; mname = "main" }
      in
      let got =
        match r.thread_errors with
        | [ (_, e) ] -> Error e
        | _ :: _ :: _ -> Error "multiple"
        | [] -> (
            match
              Hashtbl.find_opt r.machine.Jrt.Interp.statics ("Main", "out")
            with
            | Some (Jrt.Value.Int n) -> Ok n
            | _ -> Error "missing")
      in
      let jop =
        match op with
        | "+" -> Add
        | "-" -> Sub
        | "*" -> Mul
        | "/" -> Div
        | _ -> Rem
      in
      got = reference jop a b)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_binops; prop_comparisons; prop_neg_and_iinc; prop_minijava_expressions ]
