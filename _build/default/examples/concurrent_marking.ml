(* Concurrent marking end to end: run the jess workload under the SATB
   collector three ways.

   1. All barriers kept: the baseline.  The marker stays correct and the
      mutator logs every overwritten non-null pointer.
   2. Analysis-directed elision: barriers proven unnecessary are removed;
      the snapshot invariant still holds (fewer logged entries, same
      correctness) — this is the paper's whole point.
   3. A deliberately unsound policy that removes *every* barrier: the
      collector's oracle check now reports snapshot violations, showing
      that the invariant checking machinery really can catch a wrong
      elision decision.

   Run with: dune exec examples/concurrent_marking.exe *)

let run_jess ~policy_name ~(policy : Jrt.Interp.barrier_policy) =
  let cw = Harness.Exp.compile Workloads.Jess.t in
  let cfg = { Jrt.Interp.default_config with policy } in
  let report =
    Jrt.Runner.run ~cfg
      ~gc:(Jrt.Runner.make_satb ~trigger_allocs:32 ~steps_per_increment:8 ())
      cw.compiled.program ~entry:Workloads.Jess.t.entry
  in
  match report.gc with
  | Some g ->
      Fmt.pr "%-22s cycles=%d logged-per-cycle=%a violations=%d@."
        policy_name g.cycles
        Fmt.(list ~sep:comma int)
        g.logged_or_dirtied g.total_violations
  | None -> ()

let () =
  let cw = Harness.Exp.compile Workloads.Jess.t in
  run_jess ~policy_name:"keep-all" ~policy:Jrt.Interp.keep_all_policy;
  run_jess ~policy_name:"analysis-directed" ~policy:(Harness.Exp.policy_of cw);
  Fmt.pr "@.Now removing EVERY barrier (unsound for SATB):@.";
  run_jess ~policy_name:"elide-all (unsound)" ~policy:(fun _ _ _ -> true);
  Fmt.pr
    "@.The violation count above is the oracle catching live snapshot@.\
     objects that concurrent marking missed because their last pointer@.\
     was overwritten without being logged.@."
