(* The paper's §3.1 motivating example: expand(T[] ta) doubles an array
   and copies the old elements in order.

   The array analysis must infer the loop invariant
   ∀j : i ≤ j < new_ta.length : new_ta[j] = null
   by tracking the array's null range and discovering that the range's
   lower bound strides together with the loop counter (merge_intvals,
   Figure 1 of the paper).  Every copy-loop store then loses its barrier.

   This example shows the verdict at each analysis mode: the field-only
   analysis (F) cannot remove any of the array barriers; the full
   analysis (A) removes them all.

   Run with: dune exec examples/array_expand.exe *)

let () =
  let w = Workloads.Micro.expand in
  Fmt.pr "jasm source (paper §3.1):@.%s@." w.src;
  List.iter
    (fun mode ->
      let cw = Harness.Exp.compile ~mode w in
      let stats = Satb_core.Driver.static_stats cw.compiled in
      let r = Harness.Exp.run cw in
      Fmt.pr "mode %s: static %d/%d sites elided; dynamic %d/%d barrier executions elided@."
        (Satb_core.Analysis.string_of_mode mode)
        stats.elided_sites stats.total_sites r.dyn.elided_execs
        r.dyn.total_execs)
    [ Satb_core.Analysis.B; F; A ]
