(* The paper's §2.4 example of why one abstract name per allocation site
   is not enough.

   In a loop that allocates an object per iteration and also keeps a
   reference to the previous iteration's object, a store W1 to the most
   recently allocated object is an initializing store (strong update on
   the unique name R_id/A proves its field null), while a store W2 to the
   saved older object (summarized by R_id/B) must keep its barrier — with
   a single summarizing name, W1 would be lost too.

   Run with: dune exec examples/escape_precision.exe *)

let () =
  let w = Workloads.Micro.two_names in
  let cw = Harness.Exp.compile w in
  Fmt.pr "Verdicts in Main.loop (W1 = store to fresh object, W2 = store to saved older object):@.";
  List.iter
    (fun (r : Satb_core.Analysis.method_result) ->
      if r.mr_method = "loop" then
        List.iter
          (fun (v : Satb_core.Analysis.verdict) ->
            Fmt.pr "  pc %d: %s (%s)@." v.v_pc
              (if v.v_elide then "ELIDED" else "kept")
              (Satb_core.Analysis.string_of_reason v.v_reason))
          r.verdicts)
    cw.compiled.results;
  let r = Harness.Exp.run cw in
  Fmt.pr "@.dynamic: %a@." Jrt.Interp.pp_dyn_stats r.dyn
