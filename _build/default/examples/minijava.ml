(* The paper's §3.1 example, written as source the way the paper prints
   it, compiled through the mini-Java frontend, analyzed, and executed
   under the SATB collector.

   Run with: dune exec examples/minijava.exe *)

let source =
  {|
// paper §3.1: public static T[] expand(T[] ta)
class T { T payload; }

class Main {
  static T[] result;

  static T[] expand(T[] ta) {
    T[] new_ta = new T[ta.length * 2];
    for (int i = 0; i < ta.length; i = i + 1) {
      new_ta[i] = ta[i];
    }
    return new_ta;
  }

  static void main() {
    T[] src = new T[8];
    for (int i = 0; i < 8; i = i + 1) {
      src[i] = new T();
    }
    Main.result = Main.expand(src);
  }
}
|}

let () =
  Fmt.pr "mini-Java source:@.%s@." source;
  let prog = Jsrc.Compile.compile_source source in
  Jir.Verifier.verify_exn prog;
  Fmt.pr "compiled to jasm:@.%a@." Jir.Pp.pp_program
    (Jir.Program.program prog);
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  Fmt.pr "verdicts:@.";
  List.iter
    (fun (r : Satb_core.Analysis.method_result) ->
      List.iter
        (fun (v : Satb_core.Analysis.verdict) ->
          Fmt.pr "  %s.%s@@%d: %s (%s)@." r.mr_class r.mr_method v.v_pc
            (if v.v_elide then "barrier removed" else "barrier kept")
            (Satb_core.Analysis.string_of_reason v.v_reason))
        r.verdicts)
    compiled.results;
  let policy c m pc =
    not
      (Satb_core.Driver.needs_barrier compiled
         { sk_class = c; sk_method = m; sk_pc = pc })
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  let r =
    Jrt.Runner.run ~cfg
      ~gc:(Jrt.Runner.make_satb ~trigger_allocs:4 ())
      compiled.program
      ~entry:{ Jir.Types.mclass = "Main"; mname = "main" }
  in
  Fmt.pr "@.%a@." Jrt.Interp.pp_dyn_stats r.dyn;
  match r.gc with
  | Some g ->
      Fmt.pr "SATB cycles: %d, violations: %d@." g.cycles g.total_violations
  | None -> ()
