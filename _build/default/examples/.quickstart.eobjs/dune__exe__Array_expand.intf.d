examples/array_expand.mli:
