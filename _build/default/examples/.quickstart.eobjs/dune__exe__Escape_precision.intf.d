examples/escape_precision.mli:
