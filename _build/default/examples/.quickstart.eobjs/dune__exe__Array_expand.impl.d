examples/array_expand.ml: Fmt Harness List Satb_core Workloads
