examples/concurrent_marking.mli:
