examples/quickstart.mli:
