examples/quickstart.ml: Fmt Jir Jrt List Satb_core
