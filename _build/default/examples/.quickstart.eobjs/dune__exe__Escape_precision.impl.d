examples/escape_precision.ml: Fmt Harness Jrt List Satb_core Workloads
