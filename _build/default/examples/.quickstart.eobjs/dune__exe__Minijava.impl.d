examples/minijava.ml: Fmt Jir Jrt Jsrc List Satb_core
