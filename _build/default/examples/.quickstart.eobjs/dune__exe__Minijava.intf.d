examples/minijava.mli:
