examples/concurrent_marking.ml: Fmt Harness Jrt Workloads
