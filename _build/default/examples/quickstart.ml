(* Quickstart: build a program with the Builder API, run the
   barrier-removal analysis, and interpret the result.

   The program allocates a linked list of nodes.  Each node's [next] field
   is written exactly once, right after allocation, while the node is
   still thread-local — the classic initializing store whose SATB barrier
   the paper's field analysis removes.  The final [putstatic] publishes
   the list and must keep its barrier.

   Run with: dune exec examples/quickstart.exe *)

open Jir.Types

let node_class =
  Jir.Builder.cls "Node"
    ~fields:[ Jir.Builder.field_decl "next" R ]
    ~methods:
      [
        (* constructors must exist (the verifier insists every allocation
           is initialized); this one is trivial and always inlined *)
        Jir.Builder.meth "<init>" ~params:[ R ] ~ctor:true ~locals:1
          (fun b -> Jir.Builder.emit b Return);
      ]

let main_class =
  let meth =
    Jir.Builder.meth "main" ~params:[] ~locals:2 (fun b ->
        let emit = Jir.Builder.emit b in
        let label = Jir.Builder.label b in
        (* head = null; for (i = 10; i > 0; i--) { n = new Node();
             n.next = head; head = n; }  Main.list = head *)
        emit Aconst_null;
        emit (Astore 0);
        emit (Iconst 10);
        emit (Istore 1);
        label "loop";
        emit (Iload 1);
        emit (If_i (Le, "done"));
        emit (New "Node");
        emit Dup;
        emit (Invoke { mclass = "Node"; mname = "<init>" });
        emit Dup;
        emit (Aload 0);
        (* initializing store: provably pre-null, barrier removed *)
        emit (Putfield { fclass = "Node"; fname = "next" });
        emit (Astore 0);
        emit (Iinc (1, -1));
        emit (Goto "loop");
        label "done";
        emit (Aload 0);
        (* publication: the value escapes, barrier kept *)
        emit (Putstatic { fclass = "Main"; fname = "list" });
        emit Return)
  in
  Jir.Builder.cls "Main"
    ~statics:[ Jir.Builder.field_decl "list" R ]
    ~methods:[ meth ]

let () =
  let prog =
    Jir.Program.of_program (Jir.Builder.program [ node_class; main_class ])
  in
  (* 1. compile: verify, inline, analyze *)
  let compiled = Satb_core.Driver.compile ~inline_limit:100 prog in
  Fmt.pr "Verdicts:@.";
  List.iter
    (fun (r : Satb_core.Analysis.method_result) ->
      List.iter
        (fun (v : Satb_core.Analysis.verdict) ->
          Fmt.pr "  %s.%s@@%d: %s (%s)@." r.mr_class r.mr_method v.v_pc
            (if v.v_elide then "barrier removed" else "barrier kept")
            (Satb_core.Analysis.string_of_reason v.v_reason))
        r.verdicts)
    compiled.results;
  (* 2. run under the SATB collector with the verdicts as elision policy *)
  let policy c m pc =
    not
      (Satb_core.Driver.needs_barrier compiled
         { sk_class = c; sk_method = m; sk_pc = pc })
  in
  let cfg = { Jrt.Interp.default_config with policy } in
  let report =
    Jrt.Runner.run ~cfg
      ~gc:(Jrt.Runner.make_satb ~trigger_allocs:4 ())
      compiled.program
      ~entry:{ mclass = "Main"; mname = "main" }
  in
  Fmt.pr "@.%a@." Jrt.Interp.pp_dyn_stats report.dyn;
  match report.gc with
  | Some g ->
      Fmt.pr "SATB cycles: %d, invariant violations: %d@." g.cycles
        g.total_violations
  | None -> ()
